//! The `ringdeployd` actor loop: one scheduler thread owning every
//! piece of mutable state (connections, jobs, the result cache), fed by
//! a single event queue.
//!
//! The design follows the stewart actor style: a [`Daemon`] is a
//! `World` whose process queue ([`Daemon::queue_process`]) holds job
//! ids, deduplicated, and [`Daemon::run_until_idle`] drains it after
//! every external event. Transport threads (readers, workers) never
//! touch state — they only post [`Event`]s — so there is no lock
//! hierarchy and job processing is deterministic given the event order.
//!
//! # Per-job lifecycle
//!
//! `submit` → keys expanded ([`JobSpec::keys`]) → admission check
//! (`max_jobs`, [`Backpressure`] policy) → `accepted` → for each cell
//! in order: cache probe (hit ⇒ row ready immediately) or dispatch to
//! the bounded worker queue (full ⇒ the job *stalls* and retries after
//! the next completion — the actor never blocks) → rows emitted in
//! **cell order** as the contiguous ready prefix grows → `done`.
//!
//! A failed cell emits `error` and cancels the job's remaining cells; a
//! job overrunning its `timeout_ms` deadline emits `timeout` and is
//! cancelled the same way; a closed connection cancels its jobs
//! silently. Cancelled jobs linger until their in-flight cells drain
//! (the results still populate the cache) and are then dropped.
//!
//! # Shutdown
//!
//! A `shutdown` frame (or EOF on a connection marked
//! `eof_is_shutdown`, i.e. stdio) flips the daemon into draining mode:
//! waiting jobs are rejected, new submits are refused, running jobs
//! finish and stream normally. When the last job drains the daemon
//! writes `bye` to every open connection, hangs them up, joins the
//! worker pool ([`WorkerPool::shutdown`]) and returns its final stats —
//! no thread outlives [`Daemon::run`] except transport readers, which
//! exit on the hangup.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use ringdeploy_analysis::key::InstanceKey;
use ringdeploy_json::{Json, ToJson};

use crate::cache::ResultCache;
use crate::pool::{WorkItem, WorkerPool};
use crate::protocol::{parse_request, Backpressure, Request, Response, RowFrame, StatsReport};

/// Tuning knobs of a daemon instance.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// Worker threads computing cells.
    pub workers: usize,
    /// Bounded work-queue capacity (the backpressure bound).
    pub queue_capacity: usize,
    /// Result-cache memory budget in bytes.
    pub cache_bytes: usize,
    /// Maximum concurrently active jobs; further submits block or are
    /// rejected per their [`Backpressure`] policy.
    pub max_jobs: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2)
            .min(4);
        DaemonConfig {
            workers,
            queue_capacity: 2 * workers,
            cache_bytes: 16 << 20,
            max_jobs: 8,
        }
    }
}

/// Identifies one client connection.
pub type ConnId = u64;

/// Where a connection's response frames go. Transports implement this
/// over their write half; [`ClientSink::hangup`] must unblock the
/// transport's reader thread (e.g. `TcpStream::shutdown`) so graceful
/// shutdown can join it.
pub trait ClientSink: Write + Send {
    /// Closes the connection for reading *and* writing. Default: no-op.
    fn hangup(&mut self) {}
}

/// A completed cell, posted by a worker.
pub struct CellDone {
    /// Internal job id.
    pub job: u64,
    /// Cell index within the job.
    pub cell: usize,
    /// The rendered report, or the failure message.
    pub result: Result<Json, String>,
    /// The worker caught a panic computing this cell (`result` is the
    /// substitute error). Counted in [`StatsReport::panics`].
    pub panicked: bool,
}

/// Everything that can happen to the daemon, in one queue.
pub enum Event {
    /// A transport accepted a connection.
    Opened {
        /// Transport-assigned connection id (must be fresh).
        conn: ConnId,
        /// Write half of the connection.
        sink: Box<dyn ClientSink>,
        /// Treat this connection's EOF as a shutdown request (stdio
        /// mode's single client).
        eof_is_shutdown: bool,
    },
    /// One request line arrived on `conn`.
    Frame {
        /// Source connection.
        conn: ConnId,
        /// The raw line (one JSON frame).
        line: String,
    },
    /// The connection reached EOF or errored.
    Closed {
        /// The connection that went away.
        conn: ConnId,
    },
    /// A worker finished a cell.
    CellDone(CellDone),
}

struct Conn {
    sink: Box<dyn ClientSink>,
    open: bool,
    eof_is_shutdown: bool,
}

impl Conn {
    /// Writes one frame; a failed write closes the connection (the
    /// caller then cancels its jobs via the normal `Closed` path).
    fn send(&mut self, response: &Response) -> bool {
        if !self.open {
            return false;
        }
        let line = response.to_json().to_string();
        let ok = writeln!(self.sink, "{line}").is_ok() && self.sink.flush().is_ok();
        if !ok {
            self.open = false;
            self.sink.hangup();
        }
        ok
    }
}

struct Job {
    client_id: u64,
    conn: ConnId,
    keys: Vec<InstanceKey>,
    /// Canonical encodings of `keys` (computed once; the cache
    /// identity).
    canon: Vec<String>,
    /// Cells up to (exclusive) this index are cache-probed/dispatched.
    next_dispatch: usize,
    /// Rows up to (exclusive) this index are delivered.
    emitted: usize,
    /// Cells currently in the worker queue or being computed.
    in_flight: usize,
    /// Rows served from cache.
    hits: usize,
    /// Completed cells awaiting in-order emission: cell index →
    /// (served-from-cache, result).
    ready: BTreeMap<usize, (bool, Result<Json, String>)>,
    /// No further frames for this job (error emitted, deadline hit, or
    /// connection closed); in-flight cells still drain into the cache.
    canceled: bool,
    /// When [`JobSpec::timeout_ms`](crate::protocol::JobSpec) is set:
    /// the instant (measured from admission) past which the job is
    /// cancelled with a `timeout` frame.
    deadline: Option<Instant>,
}

/// The actor: owns all state, processes [`Event`]s. See the
/// [module docs](self).
pub struct Daemon {
    config: DaemonConfig,
    events: Receiver<Event>,
    cache: ResultCache,
    pool: Option<WorkerPool>,
    conns: HashMap<ConnId, Conn>,
    jobs: HashMap<u64, Job>,
    /// Stewart-style dedup process queue of internal job ids.
    process: VecDeque<u64>,
    queued: HashSet<u64>,
    /// Jobs that hit a full worker queue; re-queued on the next
    /// completion.
    stalled: HashSet<u64>,
    /// Admission wait-list ([`Backpressure::Block`]); the last element
    /// is the job's `timeout_ms` (the deadline starts at admission).
    waiting: VecDeque<(ConnId, u64, Vec<InstanceKey>, Option<u64>)>,
    next_job: u64,
    draining: bool,
    completed_jobs: u64,
    rejected_jobs: u64,
    cells_computed: u64,
    panics: u64,
    timeouts: u64,
}

impl Daemon {
    /// Builds the daemon and its worker pool. The returned [`Sender`]
    /// is the event inlet transports post to (clone per thread).
    pub fn new(config: DaemonConfig) -> (Daemon, Sender<Event>) {
        let (tx, rx) = channel();
        let pool = WorkerPool::spawn(config.workers, config.queue_capacity, tx.clone());
        let daemon = Daemon {
            config,
            events: rx,
            cache: ResultCache::new(config.cache_bytes),
            pool: Some(pool),
            conns: HashMap::new(),
            jobs: HashMap::new(),
            process: VecDeque::new(),
            queued: HashSet::new(),
            stalled: HashSet::new(),
            waiting: VecDeque::new(),
            next_job: 0,
            draining: false,
            completed_jobs: 0,
            rejected_jobs: 0,
            cells_computed: 0,
            panics: 0,
            timeouts: 0,
        };
        (daemon, tx)
    }

    /// Runs the actor loop until shutdown completes; returns the final
    /// stats. Joins every worker thread before returning.
    pub fn run(mut self) -> StatsReport {
        while !(self.draining && self.jobs.is_empty() && self.waiting.is_empty()) {
            // Block until the next event — or only until the earliest
            // job deadline, so a timed-out job is cancelled promptly
            // even when no worker completion is forthcoming.
            let event = match self.next_deadline() {
                None => match self.events.recv() {
                    Ok(event) => Some(event),
                    Err(_) => break, // every sender gone
                },
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    match self.events.recv_timeout(wait) {
                        Ok(event) => Some(event),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            if let Some(event) = event {
                self.handle(event);
            }
            self.expire_jobs();
            self.run_until_idle();
        }
        let stats = self.stats();
        for conn in self.conns.values_mut() {
            conn.send(&Response::Bye);
            conn.open = false;
            conn.sink.hangup();
        }
        self.pool
            .take()
            .expect("pool present until here")
            .shutdown();
        stats
    }

    fn stats(&self) -> StatsReport {
        StatsReport {
            cache: self.cache.stats(),
            active_jobs: self.jobs.len(),
            waiting_jobs: self.waiting.len(),
            completed_jobs: self.completed_jobs,
            rejected_jobs: self.rejected_jobs,
            cells_computed: self.cells_computed,
            panics: self.panics,
            timeouts: self.timeouts,
        }
    }

    /// The earliest deadline among live (non-cancelled) jobs, bounding
    /// how long the actor may block on the event queue.
    fn next_deadline(&self) -> Option<Instant> {
        self.jobs
            .values()
            .filter(|job| !job.canceled)
            .filter_map(|job| job.deadline)
            .min()
    }

    /// Cancels every job whose deadline has passed with a typed
    /// `timeout` frame. The cancelled job's in-flight cells still drain
    /// into the cache (phase 3 keeps the job until `in_flight == 0`),
    /// so a timeout never poisons cached results.
    fn expire_jobs(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, job)| !job.canceled && job.deadline.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            job.canceled = true;
            job.next_dispatch = job.keys.len();
            self.timeouts += 1;
            let frame = Response::Timeout {
                id: job.client_id,
                rows: job.emitted,
            };
            let conn = job.conn;
            self.send_to(conn, &frame);
            self.queue_process(id);
        }
    }

    fn send_to(&mut self, conn: ConnId, response: &Response) {
        let lost = match self.conns.get_mut(&conn) {
            Some(c) => !c.send(response) && !c.open,
            None => false,
        };
        if lost {
            self.cancel_conn_jobs(conn);
        }
    }

    fn queue_process(&mut self, job: u64) {
        if self.queued.insert(job) {
            self.process.push_back(job);
        }
    }

    fn run_until_idle(&mut self) {
        while let Some(job) = self.process.pop_front() {
            self.queued.remove(&job);
            self.process_job(job);
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Opened {
                conn,
                sink,
                eof_is_shutdown,
            } => {
                self.conns.insert(
                    conn,
                    Conn {
                        sink,
                        open: true,
                        eof_is_shutdown,
                    },
                );
            }
            Event::Frame { conn, line } => match parse_request(&line) {
                Ok(request) => self.handle_request(conn, request),
                Err(message) => self.send_to(conn, &Response::Error { id: None, message }),
            },
            Event::Closed { conn } => {
                let eof_is_shutdown = self
                    .conns
                    .get(&conn)
                    .map(|c| c.eof_is_shutdown)
                    .unwrap_or(false);
                if eof_is_shutdown {
                    // stdio: only the read side closed — the sink is
                    // still writable, so drain jobs and keep streaming
                    // (EOF is the single client's shutdown request).
                    self.begin_shutdown();
                } else {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.open = false;
                    }
                    self.cancel_conn_jobs(conn);
                }
            }
            Event::CellDone(done) => {
                self.cells_computed += 1;
                if done.panicked {
                    self.panics += 1;
                }
                if let Some(job) = self.jobs.get_mut(&done.job) {
                    job.in_flight -= 1;
                    if let Ok(payload) = &done.result {
                        self.cache
                            .insert(job.canon[done.cell].clone(), payload.clone());
                    }
                    job.ready.insert(done.cell, (false, done.result));
                    self.queue_process(done.job);
                }
                // A completion frees a queue slot: wake stalled jobs.
                for job in std::mem::take(&mut self.stalled) {
                    self.queue_process(job);
                }
            }
        }
    }

    fn handle_request(&mut self, conn: ConnId, request: Request) {
        match request {
            Request::Submit {
                id,
                backpressure,
                job,
            } => {
                if self.draining {
                    self.rejected_jobs += 1;
                    self.send_to(
                        conn,
                        &Response::Rejected {
                            id,
                            reason: "shutting down".to_string(),
                        },
                    );
                    return;
                }
                let timeout_ms = job.timeout_ms;
                let keys = match job.keys() {
                    Ok(keys) => keys,
                    Err(message) => {
                        self.send_to(
                            conn,
                            &Response::Error {
                                id: Some(id),
                                message,
                            },
                        );
                        return;
                    }
                };
                if self.jobs.len() < self.config.max_jobs {
                    self.admit(conn, id, keys, timeout_ms);
                } else {
                    match backpressure {
                        Backpressure::Block => {
                            self.waiting.push_back((conn, id, keys, timeout_ms));
                        }
                        Backpressure::Reject => {
                            self.rejected_jobs += 1;
                            let reason = format!(
                                "at capacity ({} active jobs, max_jobs = {})",
                                self.jobs.len(),
                                self.config.max_jobs
                            );
                            self.send_to(conn, &Response::Rejected { id, reason });
                        }
                    }
                }
            }
            Request::Stats => {
                let stats = self.stats();
                self.send_to(conn, &Response::Stats(stats));
            }
            Request::Shutdown => self.begin_shutdown(),
        }
    }

    fn begin_shutdown(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        while let Some((conn, id, _, _)) = self.waiting.pop_front() {
            self.rejected_jobs += 1;
            self.send_to(
                conn,
                &Response::Rejected {
                    id,
                    reason: "shutting down".to_string(),
                },
            );
        }
    }

    fn admit(
        &mut self,
        conn: ConnId,
        client_id: u64,
        keys: Vec<InstanceKey>,
        timeout_ms: Option<u64>,
    ) {
        let internal = self.next_job;
        self.next_job += 1;
        let canon = keys.iter().map(InstanceKey::canonical).collect();
        let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        self.send_to(
            conn,
            &Response::Accepted {
                id: client_id,
                cells: keys.len(),
            },
        );
        self.jobs.insert(
            internal,
            Job {
                client_id,
                conn,
                keys,
                canon,
                next_dispatch: 0,
                emitted: 0,
                in_flight: 0,
                hits: 0,
                ready: BTreeMap::new(),
                canceled: false,
                deadline,
            },
        );
        self.queue_process(internal);
    }

    fn cancel_conn_jobs(&mut self, conn: ConnId) {
        let affected: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, job)| job.conn == conn)
            .map(|(&id, _)| id)
            .collect();
        for id in affected {
            if let Some(job) = self.jobs.get_mut(&id) {
                job.canceled = true;
                job.next_dispatch = job.keys.len();
            }
            self.queue_process(id);
        }
        self.waiting.retain(|(c, _, _, _)| *c != conn);
    }

    /// One stewart-style processing step for one job: advance the
    /// cache-probe/dispatch frontier, emit the contiguous ready prefix
    /// in order, finish the job if complete.
    fn process_job(&mut self, id: u64) {
        let Some(mut job) = self.jobs.remove(&id) else {
            return;
        };

        // Phase 1: probe the cache / dispatch misses, in cell order.
        while !job.canceled && job.next_dispatch < job.keys.len() {
            let cell = job.next_dispatch;
            if let Some(payload) = self.cache.get(&job.canon[cell]) {
                job.ready.insert(cell, (true, Ok(payload)));
                job.hits += 1;
                job.next_dispatch += 1;
                continue;
            }
            let item = WorkItem {
                job: id,
                cell,
                key: job.keys[cell].clone(),
            };
            match self.pool.as_ref().expect("pool alive").try_dispatch(item) {
                Ok(()) => {
                    job.in_flight += 1;
                    job.next_dispatch += 1;
                }
                Err(_full) => {
                    self.stalled.insert(id);
                    break;
                }
            }
        }

        // Phase 2: emit the contiguous ready prefix, in order.
        while let Some(&(cached, _)) = job.ready.get(&job.emitted) {
            let (_, result) = job.ready.remove(&job.emitted).expect("entry just probed");
            let seq = job.emitted;
            job.emitted += 1;
            if job.canceled {
                continue; // drain silently
            }
            match result {
                Ok(payload) => {
                    let row = Response::Row(RowFrame {
                        id: job.client_id,
                        seq,
                        cached,
                        fingerprint: job.keys[seq].fingerprint(),
                        key: job.keys[seq].clone(),
                        payload,
                    });
                    self.send_to(job.conn, &row);
                    // A failed write closed the connection and marked
                    // this job cancelled through `cancel_conn_jobs` —
                    // but `self.jobs` no longer holds it. Re-check.
                    if self.conns.get(&job.conn).map(|c| c.open) != Some(true) {
                        job.canceled = true;
                        job.next_dispatch = job.keys.len();
                    }
                }
                Err(message) => {
                    let error = Response::Error {
                        id: Some(job.client_id),
                        message,
                    };
                    self.send_to(job.conn, &error);
                    job.canceled = true;
                    job.next_dispatch = job.keys.len();
                }
            }
        }

        // Phase 3: completion.
        let complete = if job.canceled {
            job.in_flight == 0
        } else {
            job.emitted == job.keys.len()
        };
        if complete {
            if !job.canceled {
                self.completed_jobs += 1;
                let done = Response::Done {
                    id: job.client_id,
                    rows: job.keys.len(),
                    cache_hits: job.hits,
                };
                self.send_to(job.conn, &done);
            }
            self.stalled.remove(&id);
            self.admit_waiting();
        } else {
            self.jobs.insert(id, job);
        }
    }

    fn admit_waiting(&mut self) {
        while self.jobs.len() < self.config.max_jobs {
            let Some((conn, id, keys, timeout_ms)) = self.waiting.pop_front() else {
                break;
            };
            self.admit(conn, id, keys, timeout_ms);
        }
    }
}
