//! A minimal blocking client for `ringdeployd`'s TCP endpoint.
//!
//! One [`Client`] is one connection: [`Client::send`] writes request
//! frames, [`Client::recv`] reads response frames in daemon order.
//! Raw-line access ([`Client::recv_line`]) is exposed for tools that
//! forward frames verbatim (the `ringdeploy --connect` mode does, so
//! its output stays `jq`-able).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use ringdeploy_json::ToJson;

use crate::protocol::{parse_response, Request, Response};

/// Connect failures worth retrying: the daemon exists (or will momentarily)
/// but the TCP handshake lost a race with its listener.
fn is_transient(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
    )
}

/// One connection to a running daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (host:port).
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Connects to `addr`, retrying *transient* connect failures
    /// (connection refused/reset/aborted, timeout — typically a daemon
    /// that has not finished binding its listener yet) with exponential
    /// backoff: `backoff`, `2·backoff`, `4·backoff`, … between the up
    /// to `attempts` attempts. Non-transient failures (e.g. a bad
    /// address) and the final attempt's failure propagate immediately.
    ///
    /// # Errors
    ///
    /// Propagates the first non-transient or the last transient connect
    /// failure.
    pub fn connect_with_retry(addr: &str, attempts: u32, backoff: Duration) -> io::Result<Client> {
        let attempts = attempts.max(1);
        let mut wait = backoff;
        for _ in 1..attempts {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if is_transient(&e) => {
                    std::thread::sleep(wait);
                    wait = wait.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
        Client::connect(addr)
    }

    /// Writes one request frame.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        let line = request.to_json().to_string();
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the next frame as a raw line; `None` on EOF (the daemon
    /// hung up after `bye`).
    ///
    /// # Errors
    ///
    /// Propagates the read failure.
    pub fn recv_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Reads and parses the next frame; `None` on EOF.
    ///
    /// # Errors
    ///
    /// Propagates read failures; a frame that fails to parse becomes
    /// [`io::ErrorKind::InvalidData`].
    pub fn recv(&mut self) -> io::Result<Option<Response>> {
        match self.recv_line()? {
            None => Ok(None),
            Some(line) => parse_response(&line)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Half-closes the write side, signalling the daemon this client is
    /// finished submitting (its EOF cancels the client's pending jobs).
    ///
    /// # Errors
    ///
    /// Propagates the socket shutdown failure.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.writer.shutdown(Shutdown::Write)
    }
}
