//! Transports: TCP listener and stdio, both feeding the [`Daemon`]'s
//! event queue.
//!
//! Transport threads are dumb pipes — a reader thread turns lines into
//! [`Event::Frame`]s, the accept thread turns sockets into
//! [`Event::Opened`]s — and all protocol logic lives in the actor. On
//! shutdown the daemon hangs up every connection
//! ([`ClientSink::hangup`]), which unblocks the readers; the accept
//! loop is unblocked by a self-connection, and [`Server::run`] joins
//! every transport thread before returning.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::daemon::{ClientSink, Daemon, DaemonConfig, Event};
use crate::protocol::StatsReport;

struct TcpSink(TcpStream);

impl Write for TcpSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl ClientSink for TcpSink {
    fn hangup(&mut self) {
        let _ = self.0.shutdown(Shutdown::Both);
    }
}

/// Reads lines from `stream`, posting each as a frame; posts `Closed`
/// on EOF or error. Exits when the daemon hangs the socket up.
fn read_loop(conn: u64, stream: TcpStream, events: Sender<Event>) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if events.send(Event::Frame { conn, line }).is_err() {
            return; // daemon gone
        }
    }
    let _ = events.send(Event::Closed { conn });
}

/// A bound `ringdeployd` TCP endpoint. [`Server::bind`], read the port
/// back with [`Server::local_addr`], then [`Server::run`] on a thread
/// you own.
pub struct Server {
    listener: TcpListener,
    config: DaemonConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: DaemonConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (port-0 discovery).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` frame drains the daemon; returns the
    /// final stats. Joins the accept thread and every reader thread —
    /// when this returns, no server thread is left running.
    pub fn run(self) -> StatsReport {
        let addr = self.listener.local_addr().ok();
        let (daemon, events) = Daemon::new(self.config);
        let done = Arc::new(AtomicBool::new(false));
        let accept = {
            let listener = self.listener;
            let events = events.clone();
            let done = done.clone();
            std::thread::Builder::new()
                .name("ringdeployd-accept".to_string())
                .spawn(move || {
                    let mut readers: Vec<JoinHandle<()>> = Vec::new();
                    let mut next_conn: u64 = 1;
                    while let Ok((stream, _peer)) = listener.accept() {
                        if done.load(Ordering::SeqCst) {
                            break; // the wake-up self-connection
                        }
                        let conn = next_conn;
                        next_conn += 1;
                        let Ok(write_half) = stream.try_clone() else {
                            continue;
                        };
                        if events
                            .send(Event::Opened {
                                conn,
                                sink: Box::new(TcpSink(write_half)),
                                eof_is_shutdown: false,
                            })
                            .is_err()
                        {
                            break;
                        }
                        let events = events.clone();
                        let reader = std::thread::Builder::new()
                            .name(format!("ringdeployd-reader-{conn}"))
                            .spawn(move || read_loop(conn, stream, events))
                            .expect("spawn reader thread");
                        readers.push(reader);
                    }
                    for reader in readers {
                        reader.join().expect("reader thread panicked");
                    }
                })
                .expect("spawn accept thread")
        };
        let stats = daemon.run();
        // Unblock the (blocking) accept call with a throwaway
        // self-connection so the thread can observe `done` and exit.
        done.store(true, Ordering::SeqCst);
        if let Some(addr) = addr {
            let _ = TcpStream::connect(addr);
        }
        accept.join().expect("accept thread panicked");
        stats
    }
}

struct StdoutSink(io::Stdout);

impl Write for StdoutSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl ClientSink for StdoutSink {}

/// Serves one client over stdin/stdout: requests are lines on stdin,
/// frames go to stdout, and EOF on stdin is a shutdown request.
/// Returns the final stats.
///
/// The stdin reader thread is detached, not joined: if the client sends
/// a `shutdown` frame without closing stdin, the reader stays blocked
/// in `read_line` and only exits with the process.
pub fn serve_stdio(config: DaemonConfig) -> StatsReport {
    let (daemon, events) = Daemon::new(config);
    events
        .send(Event::Opened {
            conn: 0,
            sink: Box::new(StdoutSink(io::stdout())),
            eof_is_shutdown: true,
        })
        .expect("daemon receiver alive");
    {
        let events = events.clone();
        std::thread::Builder::new()
            .name("ringdeployd-stdin".to_string())
            .spawn(move || {
                let stdin = io::stdin();
                for line in stdin.lock().lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    if events.send(Event::Frame { conn: 0, line }).is_err() {
                        return;
                    }
                }
                let _ = events.send(Event::Closed { conn: 0 });
            })
            .expect("spawn stdin reader");
    }
    daemon.run()
}
