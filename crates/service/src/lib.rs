//! # ringdeploy-service — `ringdeployd`, the deployment daemon
//!
//! A long-lived service in front of the `ringdeploy` verification
//! engines: clients submit sweep / explore / adversary / certify jobs
//! as line-delimited JSON frames, the daemon fans their cells out onto
//! a shared bounded worker pool, and streams result rows back **in
//! cell order** per job. Every result is memoized in a deterministic
//! [`ResultCache`] keyed by the canonical
//! [`InstanceKey`](ringdeploy_analysis::InstanceKey) encoding, so a
//! repeated query is answered byte-identically without re-running the
//! engine.
//!
//! The moving parts, one module each:
//!
//! * [`protocol`] — the wire vocabulary ([`Request`], [`Response`],
//!   [`JobSpec`], [`RowFrame`]) and its pinned JSON encodings;
//! * [`cache`] — the bounded-memory LRU result cache with hit / miss /
//!   eviction counters;
//! * [`engine`] — the pure compute kernel (key in, rendered report
//!   out) that pins every free engine parameter for cache soundness;
//! * [`pool`] — the `std::thread` worker pool behind a bounded queue
//!   (the backpressure bound);
//! * [`daemon`] — the stewart-style actor loop owning all state;
//! * [`server`] — TCP and stdio transports;
//! * [`client`] — a minimal blocking client.
//!
//! # Example
//!
//! ```
//! use ringdeploy_service::{Client, DaemonConfig, JobSpec, Request, Response, Server};
//! use ringdeploy_analysis::{JobKind, Workload};
//! use ringdeploy_core::Algorithm;
//!
//! let server = Server::bind("127.0.0.1:0", DaemonConfig::default())?;
//! let addr = server.local_addr()?.to_string();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(&addr)?;
//! let job = JobSpec::new(
//!     JobKind::Sweep,
//!     Algorithm::FullKnowledge,
//!     Workload::Random { n: 16, k: 4 },
//! );
//! client.send(&Request::Submit { id: 1, backpressure: Default::default(), job })?;
//! while let Some(frame) = client.recv()? {
//!     if let Response::Done { rows, .. } = frame {
//!         assert_eq!(rows, 1);
//!         break;
//!     }
//! }
//! client.send(&Request::Shutdown)?;
//! let stats = handle.join().expect("server thread");
//! assert_eq!(stats.completed_jobs, 1);
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod engine;
pub mod pool;
pub mod protocol;
pub mod server;

pub use cache::ResultCache;
pub use client::Client;
pub use daemon::{ClientSink, Daemon, DaemonConfig, Event};
pub use protocol::{
    parse_request, parse_response, Backpressure, CacheStats, JobSpec, Request, Response, RowFrame,
    StatsReport,
};
pub use server::{serve_stdio, Server};
