//! The shared worker pool: a bounded work queue multiplexing every
//! job's cache-miss cells onto `std::thread` workers.
//!
//! The queue is a [`std::sync::mpsc::sync_channel`] with capacity
//! [`DaemonConfig::queue_capacity`](crate::DaemonConfig): the actor
//! dispatches with [`WorkerPool::try_dispatch`] and treats a full queue
//! as backpressure (it simply stops dispatching until a completion
//! event frees a slot — the actor thread never blocks). Workers catch
//! panics, so one malformed cell cannot take a worker down.

use std::sync::mpsc::{Sender, SyncSender, TrySendError};
use std::thread::JoinHandle;

use ringdeploy_analysis::key::InstanceKey;

use crate::daemon::{CellDone, Event};
use crate::engine;

/// Deliberate fault injection for the chaos CI drill: when
/// `RINGDEPLOYD_CHAOS_PANIC` is set (non-empty), any cell whose key
/// label contains the value panics mid-compute. The panic is caught by
/// the worker like any other, counted in
/// [`StatsReport::panics`](crate::protocol::StatsReport), and surfaced
/// to the client as a normal cell error — the drill proves one
/// poisoned cell cannot take a worker (or the daemon) down.
fn chaos_panic_hook(key: &InstanceKey) {
    if let Ok(needle) = std::env::var("RINGDEPLOYD_CHAOS_PANIC") {
        if !needle.is_empty() && key.label().contains(&needle) {
            panic!("chaos: injected worker panic for {}", key.label());
        }
    }
}

/// One unit of work: compute the report of `key` for cell `cell` of
/// job `job` (the daemon's internal job id).
pub struct WorkItem {
    /// Internal job id.
    pub job: u64,
    /// Cell index within the job.
    pub cell: usize,
    /// What to compute.
    pub key: InstanceKey,
}

/// The worker threads plus the bounded dispatch queue.
pub struct WorkerPool {
    tx: Option<SyncSender<WorkItem>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads consuming a queue of `queue_capacity`
    /// slots; completions are posted to `events`.
    pub fn spawn(workers: usize, queue_capacity: usize, events: Sender<Event>) -> WorkerPool {
        let (tx, rx) = std::sync::mpsc::sync_channel::<WorkItem>(queue_capacity.max(1));
        let rx = std::sync::Arc::new(std::sync::Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let events = events.clone();
                std::thread::Builder::new()
                    .name(format!("ringdeployd-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the receive: workers
                        // compute concurrently.
                        let item = match rx.lock().expect("queue lock").recv() {
                            Ok(item) => item,
                            Err(_) => break, // queue closed: shutdown
                        };
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                chaos_panic_hook(&item.key);
                                engine::compute(&item.key)
                            }));
                        let panicked = outcome.is_err();
                        let result = outcome
                            .unwrap_or_else(|_| Err("worker panicked computing cell".to_string()));
                        if events
                            .send(Event::CellDone(CellDone {
                                job: item.job,
                                cell: item.cell,
                                result,
                                panicked,
                            }))
                            .is_err()
                        {
                            break; // actor gone: shutdown
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            handles,
        }
    }

    /// Attempts to enqueue `item`; hands it back when the queue is full
    /// (the actor retries after the next completion event).
    // The Err *is* the handed-back item by design; boxing it would cost
    // an allocation per backpressure bounce on the actor's hot path.
    #[allow(clippy::result_large_err)]
    pub fn try_dispatch(&self, item: WorkItem) -> Result<(), WorkItem> {
        let tx = self.tx.as_ref().expect("pool not shut down");
        match tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(item)) => Err(item),
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("workers outlive the dispatch side")
            }
        }
    }

    /// Closes the queue and joins every worker — the no-thread-leak
    /// guarantee of graceful shutdown. Callers must have drained their
    /// in-flight items' completion events first (or be prepared for the
    /// events channel to be dropped).
    pub fn shutdown(mut self) {
        drop(self.tx.take());
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}
