//! The deterministic result cache: canonical instance key → rendered
//! report, with hit/miss/eviction counters and a bounded-memory LRU
//! tier.
//!
//! # Soundness
//!
//! The cache is keyed by the **full canonical encoding** of the
//! [`InstanceKey`](ringdeploy_analysis::InstanceKey) — never by its
//! 64-bit fingerprint — so two distinct queries cannot alias an entry
//! even under an adversarial hash collision. Because every engine entry
//! point the service dispatches is a pure function of that key (the
//! daemon fixes all free engine parameters: serial exploration,
//! per-instance limits, default certify settings), a stored payload is
//! *the* answer to its key, and serving it is indistinguishable from
//! recomputing — byte-identical, since payloads are [`Json`] values and
//! the printer is deterministic.
//!
//! # Bounded memory
//!
//! `insert` charges each entry its canonical-key length plus its
//! rendered-payload length and evicts least-recently-used entries while
//! the total exceeds the budget. The entry being inserted is exempt
//! from its own eviction round (a single oversized report still gets
//! cached and is evicted by the *next* insert), so the cache degrades
//! to "remember at least the most recent answer" rather than thrashing
//! to empty.

use std::collections::{BTreeMap, HashMap};

use ringdeploy_json::Json;

use crate::protocol::CacheStats;

struct Entry {
    payload: Json,
    bytes: usize,
    stamp: u64,
}

/// Memoized reports keyed by canonical instance key. See the
/// [module docs](self) for the soundness argument.
pub struct ResultCache {
    max_bytes: usize,
    clock: u64,
    map: HashMap<String, Entry>,
    /// LRU index: monotone use-stamp → key. Stamps are unique (the
    /// clock only moves forward), so this is a faithful recency order.
    lru: BTreeMap<u64, String>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// An empty cache bounded to approximately `max_bytes` of resident
    /// key + payload text.
    pub fn new(max_bytes: usize) -> ResultCache {
        ResultCache {
            max_bytes,
            clock: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Looks up `canonical_key`, counting a hit (and refreshing
    /// recency) or a miss.
    pub fn get(&mut self, canonical_key: &str) -> Option<Json> {
        let stamp = self.tick();
        match self.map.get_mut(canonical_key) {
            Some(entry) => {
                self.lru.remove(&entry.stamp);
                entry.stamp = stamp;
                self.lru.insert(stamp, canonical_key.to_string());
                self.hits += 1;
                Some(entry.payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `payload` under `canonical_key`, then evicts
    /// least-recently-used entries (the new one exempt) while over
    /// budget. Re-inserting an existing key refreshes its payload and
    /// recency.
    pub fn insert(&mut self, canonical_key: String, payload: Json) {
        let stamp = self.tick();
        let bytes = canonical_key.len() + payload.to_string().len();
        if let Some(old) = self.map.remove(&canonical_key) {
            self.lru.remove(&old.stamp);
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.lru.insert(stamp, canonical_key.clone());
        self.map.insert(
            canonical_key,
            Entry {
                payload,
                bytes,
                stamp,
            },
        );
        while self.bytes > self.max_bytes && self.map.len() > 1 {
            let (&oldest, _) = self
                .lru
                .iter()
                .next()
                .expect("non-empty map has an LRU entry");
            if oldest == stamp {
                // Only the entry just inserted remains under the
                // budgeted stamp — keep it (see module docs).
                break;
            }
            let key = self.lru.remove(&oldest).expect("stamp just observed");
            let entry = self.map.remove(&key).expect("LRU key is resident");
            self.bytes -= entry.bytes;
            self.evictions += 1;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: &str, pad: usize) -> Json {
        Json::object([
            ("tag", Json::String(tag.to_string())),
            ("pad", Json::String("x".repeat(pad))),
        ])
    }

    #[test]
    fn hits_are_counted_and_byte_identical() {
        let mut cache = ResultCache::new(1 << 20);
        assert!(cache.get("k1").is_none());
        cache.insert("k1".to_string(), payload("a", 10));
        let first = cache.get("k1").expect("resident");
        let second = cache.get("k1").expect("still resident");
        assert_eq!(first.to_string(), second.to_string());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        // Three ~60-byte entries in a ~140-byte cache: inserting the
        // third must evict exactly one, and touching `k1` beforehand
        // makes `k2` the victim.
        let mut cache = ResultCache::new(140);
        cache.insert("k1".to_string(), payload("a", 30));
        cache.insert("k2".to_string(), payload("b", 30));
        assert!(cache.get("k1").is_some()); // refresh k1 → k2 is LRU
        cache.insert("k3".to_string(), payload("c", 30));
        assert!(cache.get("k2").is_none(), "LRU entry evicted");
        assert!(cache.get("k1").is_some(), "recently-used entry kept");
        assert!(cache.get("k3").is_some(), "new entry kept");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= 140);
    }

    #[test]
    fn oversized_entry_is_kept_until_the_next_insert() {
        let mut cache = ResultCache::new(10);
        cache.insert("big".to_string(), payload("a", 500));
        assert!(
            cache.get("big").is_some(),
            "a single oversized entry survives its own insert"
        );
        cache.insert("next".to_string(), payload("b", 500));
        assert!(cache.get("big").is_none(), "evicted by the next insert");
        assert!(cache.get("next").is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_charging() {
        let mut cache = ResultCache::new(1 << 20);
        cache.insert("k".to_string(), payload("a", 100));
        let bytes_first = cache.stats().bytes;
        cache.insert("k".to_string(), payload("b", 100));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().bytes, bytes_first);
        let got = cache.get("k").expect("resident");
        assert!(got.to_string().contains("\"b\""), "payload refreshed");
    }
}
