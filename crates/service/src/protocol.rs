//! The `ringdeployd` wire protocol: line-delimited JSON frames.
//!
//! Every frame is one [`Json`] object on one line, tagged by a `type`
//! field. Clients send [`Request`] frames; the daemon answers with
//! [`Response`] frames. All encodings go through the deterministic
//! sorted-key printer of `ringdeploy-json`, so a frame's byte encoding
//! is a pure function of its value — the property the cache-determinism
//! guarantee ("a cached reply is byte-identical to the cold reply")
//! rests on.
//!
//! # Frame vocabulary
//!
//! Requests:
//!
//! ```text
//! {"backpressure":"block","id":1,"job":{...},"type":"submit"}
//! {"type":"stats"}
//! {"type":"shutdown"}
//! ```
//!
//! Responses (per submitted job, in this order):
//! `accepted` (or `rejected`), then one `row` per cell **in cell
//! order**, then `done`. `error` replaces the remaining rows when a
//! cell fails or the request itself is malformed; `timeout` replaces
//! them when the job overruns its [`JobSpec::timeout_ms`] deadline.
//! `stats` answers a stats request; `bye` acknowledges shutdown and
//! precedes connection close.

use ringdeploy_analysis::key::{InstanceKey, JobKind};
use ringdeploy_analysis::{
    Certify, EvidenceTier, Explore, Objective, Sweep, SweepSchedule, Workload,
};
use ringdeploy_core::Algorithm;
use ringdeploy_json::{FromJson, Json, JsonError, ToJson};
use ringdeploy_sim::FaultPlan;

/// What the daemon does when a submit arrives while the concurrent-job
/// bound ([`DaemonConfig::max_jobs`](crate::DaemonConfig)) is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Queue the job; it is admitted (and `accepted` is sent) when a
    /// running job completes. The default.
    #[default]
    Block,
    /// Refuse immediately with a `rejected` frame.
    Reject,
}

impl Backpressure {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::Reject => "reject",
        }
    }

    /// Parses the output of [`Backpressure::name`].
    pub fn from_name(name: &str) -> Option<Backpressure> {
        match name {
            "block" => Some(Backpressure::Block),
            "reject" => Some(Backpressure::Reject),
            _ => None,
        }
    }
}

/// A batch of queries of one [`JobKind`], expressed as a cross product —
/// the submit payload. Expands to [`InstanceKey`]s via [`JobSpec::keys`]
/// by reusing the deterministic cell enumerations of the existing batch
/// builders ([`Sweep::cells`], [`Explore::cells`], [`Certify::cells`]),
/// so a job's row order is identical to the corresponding offline
/// batch's row order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which engine runs.
    pub kind: JobKind,
    /// Algorithm dimension (must be non-empty).
    pub algorithms: Vec<Algorithm>,
    /// Workload dimension (must be non-empty).
    pub workloads: Vec<Workload>,
    /// Schedule dimension — [`JobKind::Sweep`] only; defaults to the
    /// single [`SweepSchedule::RandomPerSeed`] entry when empty.
    pub schedules: Vec<SweepSchedule>,
    /// Objective dimension — [`JobKind::Adversary`] / [`JobKind::Certify`];
    /// defaults to all three objectives when empty.
    pub objectives: Vec<Objective>,
    /// Evidence tier — [`JobKind::Certify`] only.
    pub tier: EvidenceTier,
    /// Seed dimension (defaults to the single seed 0 when empty).
    pub seeds: Vec<u64>,
    /// Fault plan applied to every cell of the job. The empty plan is
    /// omitted from the wire encoding and from the expanded
    /// [`InstanceKey`]s, so fault-free jobs hit the exact cache entries
    /// they did before fault support existed.
    pub faults: FaultPlan,
    /// Per-job deadline in milliseconds, enforced by the daemon. On
    /// expiry the job is cancelled with a typed `timeout` frame;
    /// in-flight cells still drain into the cache.
    pub timeout_ms: Option<u64>,
}

impl JobSpec {
    /// A minimal spec of `kind` over one algorithm × one workload.
    pub fn new(kind: JobKind, algorithm: Algorithm, workload: Workload) -> JobSpec {
        JobSpec {
            kind,
            algorithms: vec![algorithm],
            workloads: vec![workload],
            schedules: Vec::new(),
            objectives: Vec::new(),
            tier: EvidenceTier::Adversarial,
            seeds: vec![0],
            faults: FaultPlan::none(),
            timeout_ms: None,
        }
    }

    /// Applies `faults` to every cell of the job.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> JobSpec {
        self.faults = faults;
        self
    }

    /// Sets the per-job deadline.
    #[must_use]
    pub fn timeout_ms(mut self, timeout_ms: u64) -> JobSpec {
        self.timeout_ms = Some(timeout_ms);
        self
    }

    /// Expands the cross product into cache keys, in the deterministic
    /// row order of the underlying batch builder.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for empty dimensions.
    pub fn keys(&self) -> Result<Vec<InstanceKey>, String> {
        let seeds = if self.seeds.is_empty() {
            vec![0]
        } else {
            self.seeds.clone()
        };
        let mut keys: Vec<InstanceKey> = match self.kind {
            JobKind::Sweep => {
                let mut sweep = Sweep::new()
                    .algorithms(self.algorithms.iter().copied())
                    .workloads(self.workloads.iter().copied())
                    .seeds(seeds);
                let schedules = if self.schedules.is_empty() {
                    &[SweepSchedule::RandomPerSeed][..]
                } else {
                    &self.schedules[..]
                };
                for schedule in schedules {
                    sweep = match schedule {
                        SweepSchedule::Preset(preset) => sweep.schedule(*preset),
                        SweepSchedule::RandomPerSeed => sweep.random_per_seed(),
                    };
                }
                let cells = sweep.cells().map_err(|e| e.to_string())?;
                cells.iter().map(InstanceKey::for_sweep).collect()
            }
            JobKind::Explore => {
                let explore = Explore::new()
                    .algorithms(self.algorithms.iter().copied())
                    .workloads(self.workloads.iter().copied())
                    .seeds(seeds);
                let cells = explore.cells().map_err(|e| e.to_string())?;
                cells.iter().map(InstanceKey::for_explore).collect()
            }
            JobKind::Adversary | JobKind::Certify => {
                let mut certify = Certify::new()
                    .algorithms(self.algorithms.iter().copied())
                    .workloads(self.workloads.iter().copied())
                    .seeds(seeds)
                    .tier(self.tier);
                if !self.objectives.is_empty() {
                    certify = certify.objectives(self.objectives.iter().copied());
                }
                let cells = certify.cells().map_err(|e| e.to_string())?;
                cells
                    .iter()
                    .map(|cell| {
                        if self.kind == JobKind::Adversary {
                            InstanceKey::for_adversary(cell)
                        } else {
                            InstanceKey::for_certify(cell, self.tier)
                        }
                    })
                    .collect()
            }
        };
        if !self.faults.is_empty() {
            keys = keys
                .into_iter()
                .map(|key| key.with_faults(self.faults.clone()))
                .collect();
        }
        Ok(keys)
    }
}

/// A client → daemon frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job. `id` is client-chosen and echoed on every frame of
    /// the job; it must be unique among the connection's *active* jobs.
    Submit {
        /// Client-chosen job id, echoed on every frame of the job.
        id: u64,
        /// Admission policy when the daemon is at its concurrent-job
        /// bound.
        backpressure: Backpressure,
        /// The query batch.
        job: JobSpec,
    },
    /// Ask for a [`StatsReport`] snapshot.
    Stats,
    /// Drain all in-flight jobs, answer `bye`, and exit.
    Shutdown,
}

/// One streamed result row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowFrame {
    /// The client-chosen job id.
    pub id: u64,
    /// Cell index within the job — rows arrive with consecutive `seq`
    /// starting at 0 (the in-order delivery guarantee).
    pub seq: usize,
    /// Whether the payload was served from the result cache.
    pub cached: bool,
    /// [`InstanceKey::fingerprint`] of `key` — equals the payload's own
    /// `instance_fingerprint` field where the report type carries one.
    pub fingerprint: u64,
    /// The full canonical instance key (auditable cache identity).
    pub key: InstanceKey,
    /// The report: `DeployReport` (sweep), `ExploreReport` (explore),
    /// `WorstCase` (adversary) or `BoundCertificate` (certify) in its
    /// standard JSON encoding.
    pub payload: Json,
}

/// Cache counters of a [`StatsReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Approximate resident bytes (canonical key + rendered payload).
    pub bytes: usize,
}

/// Daemon-wide counters answered to a stats request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Jobs currently running.
    pub active_jobs: usize,
    /// Jobs waiting for admission ([`Backpressure::Block`]).
    pub waiting_jobs: usize,
    /// Jobs completed since startup.
    pub completed_jobs: u64,
    /// Jobs refused since startup ([`Backpressure::Reject`] or
    /// shutdown).
    pub rejected_jobs: u64,
    /// Cells actually computed by the worker pool (cache misses).
    pub cells_computed: u64,
    /// Worker panics caught by the pool's `catch_unwind` since startup.
    /// Nonzero means a cell crashed its worker thread mid-compute; the
    /// CI service job asserts this stays 0.
    pub panics: u64,
    /// Jobs cancelled by their [`JobSpec::timeout_ms`] deadline since
    /// startup.
    pub timeouts: u64,
}

/// A daemon → client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted; `cells` rows will follow.
    Accepted {
        /// The client-chosen job id.
        id: u64,
        /// Number of rows the job will stream.
        cells: usize,
    },
    /// The job was refused (backpressure bound, or shutdown in
    /// progress).
    Rejected {
        /// The client-chosen job id.
        id: u64,
        /// Why.
        reason: String,
    },
    /// One result row.
    Row(RowFrame),
    /// The job finished; all `rows` rows were delivered.
    Done {
        /// The client-chosen job id.
        id: u64,
        /// Rows delivered.
        rows: usize,
        /// How many of them came from the cache.
        cache_hits: usize,
    },
    /// The job overran its [`JobSpec::timeout_ms`] deadline; it is
    /// cancelled and no further rows follow. In-flight cells still
    /// finish into the cache, so a timed-out job never poisons it.
    Timeout {
        /// The client-chosen job id.
        id: u64,
        /// Rows already delivered before the deadline hit.
        rows: usize,
    },
    /// A malformed request (`id: None`) or a failed cell (`id` set; the
    /// job is aborted, no further rows follow).
    Error {
        /// The job the error belongs to, when attributable.
        id: Option<u64>,
        /// Human-readable description.
        message: String,
    },
    /// Stats snapshot.
    Stats(StatsReport),
    /// Shutdown acknowledged; the daemon closes the connection next.
    Bye,
}

fn raw_field<'a>(json: &'a Json, name: &str) -> Result<&'a Json, JsonError> {
    let Json::Object(map) = json else {
        return Err(JsonError::Decode(format!("expected object, found {json}")));
    };
    map.get(name)
        .ok_or_else(|| JsonError::Decode(format!("missing field `{name}`")))
}

fn frame_type(json: &Json) -> Result<String, JsonError> {
    json.field("type")
}

impl ToJson for Backpressure {
    fn to_json(&self) -> Json {
        Json::String(self.name().to_string())
    }
}

impl FromJson for Backpressure {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_str()
            .and_then(Backpressure::from_name)
            .ok_or_else(|| JsonError::Decode(format!("unknown backpressure policy {json}")))
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind", self.kind.to_json()),
            ("algorithms", Json::array(self.algorithms.iter())),
            ("workloads", Json::array(self.workloads.iter())),
            ("schedules", Json::array(self.schedules.iter())),
            ("objectives", Json::array(self.objectives.iter())),
            ("tier", self.tier.to_json()),
            ("seeds", Json::array(self.seeds.iter())),
        ];
        // Both fields default to "absent"; omitting them keeps
        // fault-free submit frames byte-identical to the pre-fault
        // protocol.
        if !self.faults.is_empty() {
            fields.push(("faults", self.faults.to_json()));
        }
        if let Some(timeout_ms) = self.timeout_ms {
            fields.push(("timeout_ms", timeout_ms.to_json()));
        }
        Json::object(fields)
    }
}

impl FromJson for JobSpec {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(JobSpec {
            kind: json.field("kind")?,
            algorithms: json.field("algorithms")?,
            workloads: json.field("workloads")?,
            schedules: json.optional_field("schedules")?.unwrap_or_default(),
            objectives: json.optional_field("objectives")?.unwrap_or_default(),
            tier: json
                .optional_field("tier")?
                .unwrap_or(EvidenceTier::Adversarial),
            seeds: json.optional_field("seeds")?.unwrap_or_else(|| vec![0]),
            faults: json.optional_field("faults")?.unwrap_or_default(),
            timeout_ms: json.optional_field("timeout_ms")?,
        })
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Submit {
                id,
                backpressure,
                job,
            } => Json::object([
                ("type", Json::String("submit".to_string())),
                ("id", id.to_json()),
                ("backpressure", backpressure.to_json()),
                ("job", job.to_json()),
            ]),
            Request::Stats => Json::object([("type", Json::String("stats".to_string()))]),
            Request::Shutdown => Json::object([("type", Json::String("shutdown".to_string()))]),
        }
    }
}

impl FromJson for Request {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match frame_type(json)?.as_str() {
            "submit" => Ok(Request::Submit {
                id: json.field("id")?,
                backpressure: json.optional_field("backpressure")?.unwrap_or_default(),
                job: json.field("job")?,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError::Decode(format!("unknown request type `{other}`"))),
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("evictions", self.evictions.to_json()),
            ("entries", self.entries.to_json()),
            ("bytes", self.bytes.to_json()),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CacheStats {
            hits: json.field("hits")?,
            misses: json.field("misses")?,
            evictions: json.field("evictions")?,
            entries: json.field("entries")?,
            bytes: json.field("bytes")?,
        })
    }
}

impl ToJson for StatsReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("cache", self.cache.to_json()),
            ("active_jobs", self.active_jobs.to_json()),
            ("waiting_jobs", self.waiting_jobs.to_json()),
            ("completed_jobs", self.completed_jobs.to_json()),
            ("rejected_jobs", self.rejected_jobs.to_json()),
            ("cells_computed", self.cells_computed.to_json()),
            ("panics", self.panics.to_json()),
            ("timeouts", self.timeouts.to_json()),
        ])
    }
}

impl FromJson for StatsReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(StatsReport {
            cache: json.field("cache")?,
            active_jobs: json.field("active_jobs")?,
            waiting_jobs: json.field("waiting_jobs")?,
            completed_jobs: json.field("completed_jobs")?,
            rejected_jobs: json.field("rejected_jobs")?,
            cells_computed: json.field("cells_computed")?,
            panics: json.optional_field("panics")?.unwrap_or_default(),
            timeouts: json.optional_field("timeouts")?.unwrap_or_default(),
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Accepted { id, cells } => Json::object([
                ("type", Json::String("accepted".to_string())),
                ("id", id.to_json()),
                ("cells", cells.to_json()),
            ]),
            Response::Rejected { id, reason } => Json::object([
                ("type", Json::String("rejected".to_string())),
                ("id", id.to_json()),
                ("reason", reason.to_json()),
            ]),
            Response::Row(row) => Json::object([
                ("type", Json::String("row".to_string())),
                ("id", row.id.to_json()),
                ("seq", row.seq.to_json()),
                ("cached", row.cached.to_json()),
                // Hex-encoded: fingerprints use all 64 bits, JSON
                // numbers only round-trip 53.
                (
                    "fingerprint",
                    Json::String(format!("{:016x}", row.fingerprint)),
                ),
                ("key", row.key.to_json()),
                ("payload", row.payload.clone()),
            ]),
            Response::Done {
                id,
                rows,
                cache_hits,
            } => Json::object([
                ("type", Json::String("done".to_string())),
                ("id", id.to_json()),
                ("rows", rows.to_json()),
                ("cache_hits", cache_hits.to_json()),
            ]),
            Response::Timeout { id, rows } => Json::object([
                ("type", Json::String("timeout".to_string())),
                ("id", id.to_json()),
                ("rows", rows.to_json()),
            ]),
            Response::Error { id, message } => Json::object([
                ("type", Json::String("error".to_string())),
                ("id", id.to_json()),
                ("message", message.to_json()),
            ]),
            Response::Stats(stats) => {
                let Json::Object(mut map) = stats.to_json() else {
                    unreachable!("StatsReport encodes as an object");
                };
                map.insert("type".to_string(), Json::String("stats".to_string()));
                Json::Object(map)
            }
            Response::Bye => Json::object([("type", Json::String("bye".to_string()))]),
        }
    }
}

impl FromJson for Response {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match frame_type(json)?.as_str() {
            "accepted" => Ok(Response::Accepted {
                id: json.field("id")?,
                cells: json.field("cells")?,
            }),
            "rejected" => Ok(Response::Rejected {
                id: json.field("id")?,
                reason: json.field("reason")?,
            }),
            "row" => {
                let hex: String = json.field("fingerprint")?;
                let fingerprint = u64::from_str_radix(&hex, 16)
                    .map_err(|_| JsonError::Decode(format!("bad fingerprint hex `{hex}`")))?;
                Ok(Response::Row(RowFrame {
                    id: json.field("id")?,
                    seq: json.field("seq")?,
                    cached: json.field("cached")?,
                    fingerprint,
                    key: json.field("key")?,
                    payload: raw_field(json, "payload")?.clone(),
                }))
            }
            "done" => Ok(Response::Done {
                id: json.field("id")?,
                rows: json.field("rows")?,
                cache_hits: json.field("cache_hits")?,
            }),
            "timeout" => Ok(Response::Timeout {
                id: json.field("id")?,
                rows: json.field("rows")?,
            }),
            "error" => Ok(Response::Error {
                id: json.optional_field("id")?,
                message: json.field("message")?,
            }),
            "stats" => Ok(Response::Stats(StatsReport::from_json(json)?)),
            "bye" => Ok(Response::Bye),
            other => Err(JsonError::Decode(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

/// Parses one wire line into a [`Request`].
///
/// # Errors
///
/// Returns the parse or decode failure as a human-readable message.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line).map_err(|e| format!("invalid JSON frame: {e}"))?;
    Request::from_json(&json).map_err(|e| format!("invalid request: {e}"))
}

/// Parses one wire line into a [`Response`].
///
/// # Errors
///
/// Returns the parse or decode failure as a human-readable message.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let json = Json::parse(line).map_err(|e| format!("invalid JSON frame: {e}"))?;
    Response::from_json(&json).map_err(|e| format!("invalid response: {e}"))
}
