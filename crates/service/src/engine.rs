//! The compute kernel: one [`InstanceKey`] in, one rendered report out.
//!
//! This is the *only* place the service invokes the verification
//! engines, and it deliberately pins every free parameter so the result
//! is a pure function of the key (the cache-soundness requirement):
//!
//! * exploration runs the **clone-free serial DFS**
//!   ([`explore_one_serial`]) — the work-stealing engine is
//!   deterministic at one worker too, but its `peak_frontier` metric
//!   (peak outstanding steal tasks) differs from the serial engine's
//!   (peak DFS path depth), and the serial engine keeps cached results
//!   byte-identical with every pre-0.9 cache;
//! * search limits are always [`ExploreLimits::for_instance`];
//! * certification always uses [`CertifySettings::default`].
//!
//! Reports that carry an `instance_fingerprint` field (`DeployReport`,
//! `ExploreReport`, `BoundCertificate`) are stamped with the key's
//! fingerprint before rendering, so cache identity is auditable from
//! any payload a client receives.

use ringdeploy_analysis::key::{InstanceKey, JobKind};
use ringdeploy_analysis::{certify_one, explore_one_serial, worst_case_one, CertifySettings};
use ringdeploy_core::Deployment;
use ringdeploy_json::{Json, ToJson};
use ringdeploy_sim::adversary::Adversary;
use ringdeploy_sim::explore::{ExploreLimits, Explorer, SymmetryMode};
use ringdeploy_sim::InitialConfig;

/// Computes the report for `key`. Deterministic: equal keys produce
/// byte-identical rendered payloads.
///
/// # Errors
///
/// Returns a human-readable message for invalid workload parameters or
/// engine failures; the daemon turns it into an `error` frame.
pub fn compute(key: &InstanceKey) -> Result<Json, String> {
    let init = instantiate(key)?;
    let n = init.ring_size();
    let k = init.agent_count();
    let fingerprint = key.fingerprint();
    match key.kind {
        JobKind::Sweep => {
            let schedule = key
                .schedule
                .ok_or_else(|| format!("{}: sweep key has no schedule", key.label()))?;
            let mut report = Deployment::of(&init)
                .algorithm(key.algorithm)
                .run_preset(schedule)
                .map_err(|e| format!("{}: {e}", key.label()))?;
            report.instance_fingerprint = Some(fingerprint);
            Ok(report.to_json())
        }
        JobKind::Explore => {
            let explorer = Explorer::new().limits(ExploreLimits::for_instance(n, k));
            let mut report = explore_one_serial(key.algorithm, &init, &explorer)
                .map_err(|e| format!("{}: {e}", key.label()))?;
            report.instance_fingerprint = Some(fingerprint);
            Ok(report.to_json())
        }
        JobKind::Adversary => {
            let objective = key
                .objective
                .ok_or_else(|| format!("{}: adversary key has no objective", key.label()))?;
            let adversary = Adversary::new()
                .limits(ExploreLimits::for_instance(n, k))
                .symmetry(SymmetryMode::Rotation);
            let worst = worst_case_one(key.algorithm, &init, &adversary, objective)
                .map_err(|e| format!("{}: {e}", key.label()))?;
            // `WorstCase` has no instance_fingerprint field; the row
            // frame carries the fingerprint alongside the payload.
            Ok(worst.to_json())
        }
        JobKind::Certify => {
            let objective = key
                .objective
                .ok_or_else(|| format!("{}: certify key has no objective", key.label()))?;
            let tier = key
                .tier
                .ok_or_else(|| format!("{}: certify key has no tier", key.label()))?;
            let mut cert = certify_one(
                key.algorithm,
                &init,
                objective,
                tier,
                &CertifySettings::default(),
            )
            .map_err(|e| format!("{}: {e}", key.label()))?;
            cert.instance_fingerprint = Some(fingerprint);
            Ok(cert.to_json())
        }
    }
}

/// Instantiates the key's workload, converting generator panics (the
/// generators `assert!` their parameters) into errors — a daemon must
/// survive a malformed job.
fn instantiate(key: &InstanceKey) -> Result<InitialConfig, String> {
    let workload = key.workload;
    let seed = key.seed;
    std::panic::catch_unwind(move || workload.instantiate(seed))
        .map(|init| init.with_faults(key.faults.clone()))
        .map_err(|panic| {
            let detail = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("invalid parameters");
            format!("{}: workload rejected: {detail}", key.label())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringdeploy_analysis::Workload;
    use ringdeploy_core::{Algorithm, Schedule};

    fn sweep_key() -> InstanceKey {
        InstanceKey {
            kind: JobKind::Sweep,
            algorithm: Algorithm::FullKnowledge,
            workload: Workload::Random { n: 24, k: 4 },
            schedule: Some(Schedule::Random(3)),
            seed: 3,
            objective: None,
            tier: None,
            faults: ringdeploy_sim::FaultPlan::none(),
        }
    }

    #[test]
    fn equal_keys_render_byte_identical_payloads() {
        let a = compute(&sweep_key()).unwrap().to_string();
        let b = compute(&sweep_key()).unwrap().to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn payload_carries_the_key_fingerprint() {
        let key = sweep_key();
        let payload = compute(&key).unwrap();
        let hex: String = payload.field("instance_fingerprint").unwrap();
        assert_eq!(hex, format!("{:016x}", key.fingerprint()));
    }

    #[test]
    fn invalid_workloads_become_errors_not_panics() {
        let key = InstanceKey {
            workload: Workload::Random { n: 4, k: 9 }, // k > n
            ..sweep_key()
        };
        let err = compute(&key).unwrap_err();
        assert!(err.contains("workload rejected"), "{err}");
    }

    #[test]
    fn every_kind_computes_on_a_small_instance() {
        use ringdeploy_analysis::key::JobKind;
        use ringdeploy_analysis::{EvidenceTier, Objective};
        let base = InstanceKey {
            kind: JobKind::Explore,
            algorithm: Algorithm::FullKnowledge,
            workload: Workload::Uniform { n: 8, k: 2 },
            schedule: None,
            seed: 0,
            objective: None,
            tier: None,
            faults: ringdeploy_sim::FaultPlan::none(),
        };
        assert!(compute(&base).is_ok());
        let adversary = InstanceKey {
            kind: JobKind::Adversary,
            objective: Some(Objective::TotalMoves),
            ..base.clone()
        };
        assert!(compute(&adversary).is_ok());
        let certify = InstanceKey {
            kind: JobKind::Certify,
            objective: Some(Objective::TotalMoves),
            tier: Some(EvidenceTier::Adversarial),
            ..base
        };
        let payload = compute(&certify).unwrap();
        let holds: bool = payload.field("holds").unwrap();
        assert!(holds);
    }
}
