//! Wire-protocol pinning tests: every frame round-trips through its
//! JSON encoding, and every encoding's field-name set is pinned so an
//! accidental rename breaks loudly (clients parse these names).

use ringdeploy_analysis::key::{InstanceKey, JobKind};
use ringdeploy_analysis::{EvidenceTier, Objective, SweepSchedule, Workload};
use ringdeploy_core::{Algorithm, Schedule};
use ringdeploy_json::{FromJson, Json, ToJson};
use ringdeploy_service::{
    parse_request, parse_response, Backpressure, CacheStats, JobSpec, Request, Response, RowFrame,
    StatsReport,
};
use ringdeploy_sim::{AgentId, FaultPlan};

fn keys(json: &Json) -> Vec<String> {
    let Json::Object(map) = json else {
        panic!("expected object, found {json}");
    };
    map.keys().cloned().collect()
}

fn round_trip_request(request: &Request) -> Request {
    let line = request.to_json().to_string();
    parse_request(&line).expect("round-trip")
}

fn round_trip_response(response: &Response) -> Response {
    let line = response.to_json().to_string();
    parse_response(&line).expect("round-trip")
}

fn spec() -> JobSpec {
    JobSpec {
        kind: JobKind::Certify,
        algorithms: vec![Algorithm::FullKnowledge, Algorithm::LogSpace],
        workloads: vec![
            Workload::Random { n: 16, k: 4 },
            Workload::Periodic { n: 12, k: 4, l: 2 },
        ],
        schedules: vec![
            SweepSchedule::Preset(Schedule::Random(9)),
            SweepSchedule::RandomPerSeed,
        ],
        objectives: vec![Objective::TotalMoves],
        tier: EvidenceTier::Adversarial,
        seeds: vec![0, 7],
        faults: FaultPlan::none(),
        timeout_ms: None,
    }
}

fn key() -> InstanceKey {
    InstanceKey {
        kind: JobKind::Sweep,
        algorithm: Algorithm::FullKnowledge,
        workload: Workload::Random { n: 32, k: 8 },
        schedule: Some(Schedule::Random(7)),
        seed: 7,
        objective: None,
        tier: None,
        faults: FaultPlan::none(),
    }
}

#[test]
fn every_request_round_trips() {
    let requests = [
        Request::Submit {
            id: 3,
            backpressure: Backpressure::Reject,
            job: spec(),
        },
        Request::Stats,
        Request::Shutdown,
    ];
    for request in &requests {
        assert_eq!(&round_trip_request(request), request);
    }
}

#[test]
fn every_response_round_trips() {
    let stats = StatsReport {
        cache: CacheStats {
            hits: 5,
            misses: 7,
            evictions: 1,
            entries: 6,
            bytes: 4096,
        },
        active_jobs: 2,
        waiting_jobs: 1,
        completed_jobs: 9,
        rejected_jobs: 3,
        cells_computed: 41,
        panics: 1,
        timeouts: 2,
    };
    let responses = [
        Response::Accepted { id: 3, cells: 12 },
        Response::Rejected {
            id: 3,
            reason: "at capacity".to_string(),
        },
        Response::Row(RowFrame {
            id: 3,
            seq: 4,
            cached: true,
            fingerprint: 0xdfa0_b50a_9791_74b7,
            key: key(),
            payload: Json::object([("check", Json::String("ok".to_string()))]),
        }),
        Response::Done {
            id: 3,
            rows: 12,
            cache_hits: 4,
        },
        Response::Error {
            id: Some(3),
            message: "boom".to_string(),
        },
        Response::Error {
            id: None,
            message: "bad frame".to_string(),
        },
        Response::Timeout { id: 3, rows: 5 },
        Response::Stats(stats),
        Response::Bye,
    ];
    for response in &responses {
        assert_eq!(&round_trip_response(response), response);
    }
}

#[test]
fn frame_field_sets_are_pinned() {
    let submit = Request::Submit {
        id: 1,
        backpressure: Backpressure::Block,
        job: spec(),
    };
    assert_eq!(
        keys(&submit.to_json()),
        ["backpressure", "id", "job", "type"]
    );
    assert_eq!(
        keys(&spec().to_json()),
        [
            "algorithms",
            "kind",
            "objectives",
            "schedules",
            "seeds",
            "tier",
            "workloads",
        ]
    );
    let row = Response::Row(RowFrame {
        id: 1,
        seq: 0,
        cached: false,
        fingerprint: 1,
        key: key(),
        payload: Json::Null,
    });
    assert_eq!(
        keys(&row.to_json()),
        [
            "cached",
            "fingerprint",
            "id",
            "key",
            "payload",
            "seq",
            "type"
        ]
    );
    assert_eq!(
        keys(&Response::Accepted { id: 1, cells: 2 }.to_json()),
        ["cells", "id", "type"]
    );
    assert_eq!(
        keys(
            &Response::Done {
                id: 1,
                rows: 2,
                cache_hits: 1
            }
            .to_json()
        ),
        ["cache_hits", "id", "rows", "type"]
    );
    assert_eq!(
        keys(&Response::Timeout { id: 1, rows: 2 }.to_json()),
        ["id", "rows", "type"]
    );
    assert_eq!(
        keys(&Response::Stats(StatsReport::default()).to_json()),
        [
            "active_jobs",
            "cache",
            "cells_computed",
            "completed_jobs",
            "panics",
            "rejected_jobs",
            "timeouts",
            "type",
            "waiting_jobs",
        ]
    );
    assert_eq!(
        keys(&CacheStats::default().to_json()),
        ["bytes", "entries", "evictions", "hits", "misses"]
    );
}

/// The fingerprint crosses the wire as 16 hex digits — JSON numbers only
/// round-trip 53 bits.
#[test]
fn row_fingerprint_is_hex_encoded_full_width() {
    let row = Response::Row(RowFrame {
        id: 1,
        seq: 0,
        cached: false,
        fingerprint: u64::MAX,
        key: key(),
        payload: Json::Null,
    });
    let json = row.to_json();
    let hex: String = json.field("fingerprint").expect("fingerprint field");
    assert_eq!(hex, "ffffffffffffffff");
    let Response::Row(back) = Response::from_json(&json).expect("decode") else {
        panic!("expected row frame");
    };
    assert_eq!(back.fingerprint, u64::MAX);
}

/// Submit defaults: backpressure, tier and seeds may be omitted.
#[test]
fn submit_defaults_are_applied_on_decode() {
    let line = r#"{"type":"submit","id":9,"job":{"kind":"sweep",
        "algorithms":["algo1-full-knowledge"],
        "workloads":[{"family":"random","n":16,"k":4}]}}"#
        .replace('\n', " ");
    let Request::Submit {
        id,
        backpressure,
        job,
    } = parse_request(&line).expect("decode")
    else {
        panic!("expected submit");
    };
    assert_eq!(id, 9);
    assert_eq!(backpressure, Backpressure::Block);
    assert_eq!(job.kind, JobKind::Sweep);
    assert_eq!(job.tier, EvidenceTier::Adversarial);
    assert_eq!(job.seeds, vec![0]);
    assert!(job.schedules.is_empty());
    assert!(job.objectives.is_empty());
}

#[test]
fn malformed_frames_are_errors_not_panics() {
    assert!(parse_request("not json").is_err());
    assert!(parse_request("{\"type\":\"warp\"}").is_err());
    assert!(parse_request("{\"no\":\"type\"}").is_err());
    assert!(parse_response("{\"type\":\"warp\"}").is_err());
}

/// The canonical wire encoding of a frame is deterministic (sorted
/// keys, no whitespace) — the cache byte-identity guarantee needs this.
#[test]
fn frame_encoding_is_deterministic() {
    let frame = Response::Row(RowFrame {
        id: 2,
        seq: 1,
        cached: true,
        fingerprint: 0xdfa0_b50a_9791_74b7,
        key: key(),
        payload: Json::object([("b", 1u64.to_json()), ("a", 2u64.to_json())]),
    });
    let first = frame.to_json().to_string();
    let second = frame.to_json().to_string();
    assert_eq!(first, second);
    assert!(first.contains(r#""a":2,"b":1"#), "keys sorted: {first}");
    assert!(!first.contains('\n'));
}

/// A job spec expands to keys in the deterministic batch row order, and
/// those keys carry the spec's kind.
#[test]
fn job_spec_expansion_matches_batch_row_order() {
    let job = JobSpec {
        kind: JobKind::Sweep,
        objectives: Vec::new(),
        schedules: Vec::new(),
        ..spec()
    };
    let keys = job.keys().expect("expansion");
    // 2 algorithms × 2 workloads × 1 default schedule × 2 seeds.
    assert_eq!(keys.len(), 8);
    assert!(keys.iter().all(|k| k.kind == JobKind::Sweep));
    let again = job.keys().expect("expansion is deterministic");
    assert_eq!(keys, again);
}

/// Fault-plan and deadline plumbing: a faulty spec round-trips, emits
/// the two extra fields, and every expanded key carries the plan — while
/// the fault-free spec's encoding stays byte-identical to the pre-fault
/// protocol (pinned by `frame_field_sets_are_pinned` above).
#[test]
fn fault_plans_and_deadlines_ride_the_job_spec() {
    let plan = FaultPlan::none()
        .with_crash(AgentId(2), 3)
        .with_edge_outages(1);
    let job = JobSpec {
        kind: JobKind::Sweep,
        objectives: Vec::new(),
        schedules: Vec::new(),
        ..spec()
    }
    .faults(plan.clone())
    .timeout_ms(1500);
    assert_eq!(
        keys(&job.to_json()),
        [
            "algorithms",
            "faults",
            "kind",
            "objectives",
            "schedules",
            "seeds",
            "tier",
            "timeout_ms",
            "workloads",
        ]
    );
    let line = Request::Submit {
        id: 4,
        backpressure: Backpressure::Block,
        job: job.clone(),
    }
    .to_json()
    .to_string();
    let Request::Submit { job: back, .. } = parse_request(&line).expect("decode") else {
        panic!("expected submit");
    };
    assert_eq!(back, job);
    let expanded = job.keys().expect("expansion");
    assert!(!expanded.is_empty());
    assert!(expanded.iter().all(|k| k.faults == plan));
    // Same spec without faults expands to fault-free keys whose
    // canonical encodings never mention the field.
    let bare = JobSpec {
        faults: FaultPlan::none(),
        ..job
    };
    for key in bare.keys().expect("expansion") {
        assert!(key.faults.is_empty());
        assert!(!key.canonical().contains("faults"));
    }
}

#[test]
fn empty_dimensions_are_rejected() {
    let job = JobSpec {
        algorithms: Vec::new(),
        ..spec()
    };
    assert!(job.keys().is_err());
}

/// Cache-identity separation across problem families: two keys that
/// agree on every dimension except the family must produce distinct
/// canonical encodings *and* distinct FNV fingerprints — otherwise the
/// daemon would serve a uniform-deployment result for a gathering
/// request (or a g=2 result for a g=3 one) straight from the cache.
#[test]
fn cache_keys_never_collide_across_families() {
    let families = [
        Algorithm::FullKnowledge,
        Algorithm::LogSpace,
        Algorithm::Relaxed,
        Algorithm::partial_gathering(2),
        Algorithm::partial_gathering(3),
    ];
    let keys: Vec<InstanceKey> = families
        .iter()
        .map(|&algorithm| InstanceKey { algorithm, ..key() })
        .collect();
    for (i, a) in keys.iter().enumerate() {
        for b in &keys[i + 1..] {
            assert_ne!(
                a.canonical(),
                b.canonical(),
                "canonical encodings must differ: {} vs {}",
                a.label(),
                b.label()
            );
            assert_ne!(
                a.fingerprint(),
                b.fingerprint(),
                "fingerprints must differ: {} vs {}",
                a.label(),
                b.label()
            );
        }
    }
}

/// The gathering family name survives the wire: an `InstanceKey`
/// carrying `partial-gathering-g3` round-trips through its canonical
/// JSON back to the *same interned* family handle.
#[test]
fn gathering_family_round_trips_through_the_wire_encoding() {
    let original = InstanceKey {
        algorithm: Algorithm::partial_gathering(3),
        ..key()
    };
    let encoded = original.to_json();
    assert!(
        encoded
            .to_string()
            .contains(r#""algorithm":"partial-gathering-g3""#),
        "canonical name on the wire: {encoded}"
    );
    let decoded = InstanceKey::from_json(&encoded).expect("round-trip");
    assert_eq!(decoded, original);
    assert_eq!(decoded.fingerprint(), original.fingerprint());
}
