//! End-to-end daemon tests over real TCP connections: cache
//! determinism, in-order streaming under a tiny queue, concurrent
//! clients, admission backpressure, failure isolation and graceful
//! shutdown (the final `handle.join()` in every test doubles as the
//! no-thread-leak assertion — `Server::run` joins the pool, the accept
//! thread and every reader before returning).

use std::thread::JoinHandle;

use ringdeploy_analysis::key::JobKind;
use ringdeploy_analysis::Workload;
use ringdeploy_core::Algorithm;
use ringdeploy_service::{
    Backpressure, Client, DaemonConfig, JobSpec, Request, Response, RowFrame, Server, StatsReport,
};

fn start(config: DaemonConfig) -> (String, JoinHandle<StatsReport>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn small_config() -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        queue_capacity: 4,
        cache_bytes: 1 << 20,
        max_jobs: 4,
    }
}

fn sweep_job(seeds: &[u64]) -> JobSpec {
    JobSpec {
        seeds: seeds.to_vec(),
        ..JobSpec::new(
            JobKind::Sweep,
            Algorithm::FullKnowledge,
            Workload::Random { n: 16, k: 4 },
        )
    }
}

fn submit(client: &mut Client, id: u64, backpressure: Backpressure, job: JobSpec) {
    client
        .send(&Request::Submit {
            id,
            backpressure,
            job,
        })
        .expect("send submit");
}

/// Collects frames until the `done`/`rejected`/`error` of job `id`.
fn collect_job(client: &mut Client, id: u64) -> Vec<Response> {
    let mut frames = Vec::new();
    loop {
        let frame = client
            .recv()
            .expect("recv frame")
            .expect("daemon hung up mid-job");
        let terminal = matches!(
            &frame,
            Response::Done { id: done, .. } if *done == id
        ) || matches!(
            &frame,
            Response::Rejected { id: rej, .. } if *rej == id
        ) || matches!(&frame, Response::Error { id: Some(e), .. } if *e == id)
            || matches!(&frame, Response::Timeout { id: t, .. } if *t == id);
        frames.push(frame);
        if terminal {
            return frames;
        }
    }
}

fn rows(frames: &[Response]) -> Vec<&RowFrame> {
    frames
        .iter()
        .filter_map(|f| match f {
            Response::Row(row) => Some(row),
            _ => None,
        })
        .collect()
}

fn shutdown(client: &mut Client) {
    client.send(&Request::Shutdown).expect("send shutdown");
    loop {
        match client.recv().expect("recv during shutdown") {
            Some(Response::Bye) | None => return,
            Some(_) => {}
        }
    }
}

fn stats(client: &mut Client) -> StatsReport {
    client.send(&Request::Stats).expect("send stats");
    match client.recv().expect("recv stats") {
        Some(Response::Stats(stats)) => stats,
        other => panic!("expected stats frame, got {other:?}"),
    }
}

/// The tentpole guarantee: a repeated identical request is served from
/// the cache, byte-identical, without re-running the engine.
#[test]
fn repeated_job_is_served_from_cache_byte_identical() {
    let (addr, handle) = start(small_config());
    let mut client = Client::connect(&addr).expect("connect");

    submit(&mut client, 1, Backpressure::Block, sweep_job(&[0, 1]));
    let cold = collect_job(&mut client, 1);
    let cold_rows = rows(&cold);
    assert_eq!(cold_rows.len(), 2);
    assert!(cold_rows.iter().all(|r| !r.cached), "cold run computes");

    let computed_after_cold = stats(&mut client).cells_computed;
    assert_eq!(computed_after_cold, 2);

    submit(&mut client, 2, Backpressure::Block, sweep_job(&[0, 1]));
    let warm = collect_job(&mut client, 2);
    let warm_rows = rows(&warm);
    assert_eq!(warm_rows.len(), 2);
    assert!(
        warm_rows.iter().all(|r| r.cached),
        "warm run hits the cache"
    );
    for (cold_row, warm_row) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(
            cold_row.payload.to_string(),
            warm_row.payload.to_string(),
            "cached payload must be byte-identical to the cold payload"
        );
        assert_eq!(cold_row.fingerprint, warm_row.fingerprint);
        assert_eq!(cold_row.key, warm_row.key);
    }
    match warm.last() {
        Some(Response::Done {
            rows, cache_hits, ..
        }) => {
            assert_eq!((*rows, *cache_hits), (2, 2));
        }
        other => panic!("expected done, got {other:?}"),
    }

    let after = stats(&mut client);
    assert_eq!(
        after.cells_computed, computed_after_cold,
        "the warm run must not re-run the engine"
    );
    assert_eq!(after.cache.hits, 2);

    shutdown(&mut client);
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.completed_jobs, 2);
}

/// Rows stream with consecutive `seq` starting at 0 even when the
/// worker queue holds a single slot (maximal stall pressure).
#[test]
fn rows_arrive_in_cell_order_under_a_one_slot_queue() {
    let (addr, handle) = start(DaemonConfig {
        workers: 1,
        queue_capacity: 1,
        ..small_config()
    });
    let mut client = Client::connect(&addr).expect("connect");
    submit(
        &mut client,
        7,
        Backpressure::Block,
        sweep_job(&[0, 1, 2, 3, 4, 5]),
    );
    let frames = collect_job(&mut client, 7);
    let rows = rows(&frames);
    assert_eq!(rows.len(), 6);
    for (expect, row) in rows.iter().enumerate() {
        assert_eq!(row.seq, expect, "in-order delivery");
        assert_eq!(row.id, 7);
    }
    shutdown(&mut client);
    handle.join().expect("server thread");
}

/// Two clients stream interleaved jobs; each sees its own rows in
/// order with its own id.
#[test]
fn concurrent_clients_get_independent_in_order_streams() {
    let (addr, handle) = start(small_config());
    let workers: Vec<_> = (0..2u64)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                // Distinct seeds per client → distinct cells → both
                // clients genuinely compute concurrently.
                let seeds: Vec<u64> = (0..4).map(|s| 100 * c + s).collect();
                submit(&mut client, c, Backpressure::Block, sweep_job(&seeds));
                let frames = collect_job(&mut client, c);
                let rows = rows(&frames);
                assert_eq!(rows.len(), 4);
                for (expect, row) in rows.iter().enumerate() {
                    assert_eq!((row.id, row.seq), (c, expect));
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread");
    }
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(stats(&mut client).completed_jobs, 2);
    shutdown(&mut client);
    handle.join().expect("server thread");
}

/// With `max_jobs = 1`, a second submit is refused under
/// [`Backpressure::Reject`] and queued under [`Backpressure::Block`]
/// (its `accepted` only arrives after the first job's `done`).
#[test]
fn admission_backpressure_rejects_or_queues() {
    let (addr, handle) = start(DaemonConfig {
        workers: 1,
        queue_capacity: 1,
        max_jobs: 1,
        ..small_config()
    });
    let mut client = Client::connect(&addr).expect("connect");

    // Both submits go out back-to-back so the daemon processes the
    // second while the first is still running.
    submit(
        &mut client,
        1,
        Backpressure::Block,
        sweep_job(&[0, 1, 2, 3]),
    );
    submit(&mut client, 2, Backpressure::Reject, sweep_job(&[9]));
    let frames = collect_job(&mut client, 2);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Response::Rejected { id: 2, .. })),
        "reject policy refuses at capacity: {frames:?}"
    );
    // Job 1's rows are split across both collections (the reject
    // frame may interleave with them); count them together.
    let mut first = frames;
    first.extend(collect_job(&mut client, 1));
    let first_rows: Vec<_> = rows(&first).into_iter().filter(|r| r.id == 1).collect();
    assert_eq!(first_rows.len(), 4);

    // Same shape with Block: job 4 queues, its `accepted` must come
    // after job 3's `done`.
    submit(
        &mut client,
        3,
        Backpressure::Block,
        sweep_job(&[10, 11, 12]),
    );
    submit(&mut client, 4, Backpressure::Block, sweep_job(&[13]));
    let mut all = collect_job(&mut client, 4);
    let done_3 = all
        .iter()
        .position(|f| matches!(f, Response::Done { id: 3, .. }))
        .expect("job 3 completes");
    let accepted_4 = all
        .iter()
        .position(|f| matches!(f, Response::Accepted { id: 4, .. }))
        .expect("job 4 admitted");
    assert!(
        accepted_4 > done_3,
        "blocked job admitted only after the running job drained"
    );
    all.clear();

    let report = stats(&mut client);
    assert_eq!(report.completed_jobs, 3);
    assert_eq!(report.rejected_jobs, 1);
    shutdown(&mut client);
    handle.join().expect("server thread");
}

/// A cell whose workload parameters are invalid aborts its job with an
/// `error` frame — and the daemon (and its workers) survive to serve
/// the next job.
#[test]
fn failed_cells_abort_the_job_not_the_daemon() {
    let (addr, handle) = start(small_config());
    let mut client = Client::connect(&addr).expect("connect");

    // l = 3 divides n = 12 but not k = 4: the generator rejects it.
    let bad = JobSpec::new(
        JobKind::Sweep,
        Algorithm::FullKnowledge,
        Workload::Periodic { n: 12, k: 4, l: 3 },
    );
    submit(&mut client, 1, Backpressure::Block, bad);
    let frames = collect_job(&mut client, 1);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Response::Error { id: Some(1), .. })),
        "invalid cell surfaces as an error frame: {frames:?}"
    );
    assert!(
        !frames.iter().any(|f| matches!(f, Response::Done { .. })),
        "an aborted job has no done frame"
    );

    submit(&mut client, 2, Backpressure::Block, sweep_job(&[0]));
    let frames = collect_job(&mut client, 2);
    assert_eq!(
        rows(&frames).len(),
        1,
        "daemon still serves after a failure"
    );

    shutdown(&mut client);
    handle.join().expect("server thread");
}

/// Per-job deadlines: a job whose `timeout_ms` expires before its cells
/// dispatch is cancelled with a typed `timeout` frame (never a `done`),
/// the daemon counts it, and the same job resubmitted with a generous
/// deadline completes normally — the timeout never poisoned the cache
/// or wedged the daemon.
#[test]
fn deadlines_cancel_jobs_with_a_typed_timeout_frame() {
    let (addr, handle) = start(small_config());
    let mut client = Client::connect(&addr).expect("connect");

    let hopeless = JobSpec {
        timeout_ms: Some(0),
        ..sweep_job(&[20, 21])
    };
    submit(&mut client, 1, Backpressure::Block, hopeless);
    let frames = collect_job(&mut client, 1);
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Response::Timeout { id: 1, .. })),
        "an expired deadline surfaces as a typed timeout frame: {frames:?}"
    );
    assert!(
        !frames.iter().any(|f| matches!(f, Response::Done { .. })),
        "a timed-out job has no done frame"
    );

    let generous = JobSpec {
        timeout_ms: Some(60_000),
        ..sweep_job(&[20, 21])
    };
    submit(&mut client, 2, Backpressure::Block, generous);
    let frames = collect_job(&mut client, 2);
    assert_eq!(rows(&frames).len(), 2, "daemon still serves after timeout");
    assert!(
        frames
            .iter()
            .any(|f| matches!(f, Response::Done { id: 2, .. })),
        "a met deadline is invisible: {frames:?}"
    );

    let report = stats(&mut client);
    assert_eq!(report.timeouts, 1);
    assert_eq!(report.panics, 0);
    shutdown(&mut client);
    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.completed_jobs, 1);
}

/// Shutdown drains: a job submitted immediately before `shutdown`
/// still streams every row and its `done` before `bye`.
#[test]
fn shutdown_drains_in_flight_jobs() {
    let (addr, handle) = start(small_config());
    let mut client = Client::connect(&addr).expect("connect");
    submit(&mut client, 1, Backpressure::Block, sweep_job(&[0, 1, 2]));
    client.send(&Request::Shutdown).expect("send shutdown");

    let mut saw_done = false;
    let mut row_count = 0;
    loop {
        match client.recv().expect("recv") {
            Some(Response::Accepted { id: 1, cells: 3 }) => {}
            Some(Response::Row(row)) => {
                assert_eq!(row.seq, row_count, "drained rows stay in order");
                row_count += 1;
            }
            Some(Response::Done { id: 1, rows, .. }) => {
                assert_eq!(rows, 3);
                saw_done = true;
            }
            Some(Response::Bye) | None => break,
            Some(other) => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(saw_done, "in-flight job completed before bye");
    assert_eq!(row_count, 3);

    let final_stats = handle.join().expect("server thread");
    assert_eq!(final_stats.completed_jobs, 1);
    assert_eq!(final_stats.active_jobs, 0);

    // A submit racing the drain is refused, not lost silently.
    // (Covered implicitly: the daemon already exited, so a new connect
    // must fail.)
    assert!(Client::connect(&addr).is_err(), "daemon is gone");
}
