//! Chaos engineering for `ringdeployd`: injected worker panics and
//! mid-job client disconnects must leave the daemon serving, the cache
//! unpoisoned and every thread joined.
//!
//! The panic injection rides the process-global
//! `RINGDEPLOYD_CHAOS_PANIC` env var (a substring matched against each
//! cell's key label by the worker pool), so these phases live in their
//! own test binary — and in a single sequential test — to keep the
//! armed window away from unrelated e2e tests.

use std::thread::JoinHandle;

use ringdeploy_analysis::key::JobKind;
use ringdeploy_analysis::Workload;
use ringdeploy_core::Algorithm;
use ringdeploy_service::{
    Backpressure, Client, DaemonConfig, JobSpec, Request, Response, RowFrame, Server, StatsReport,
};

fn start(config: DaemonConfig) -> (String, JoinHandle<StatsReport>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn sweep_job(seeds: &[u64]) -> JobSpec {
    JobSpec {
        seeds: seeds.to_vec(),
        ..JobSpec::new(
            JobKind::Sweep,
            Algorithm::FullKnowledge,
            Workload::Random { n: 16, k: 4 },
        )
    }
}

fn submit(client: &mut Client, id: u64, job: JobSpec) {
    client
        .send(&Request::Submit {
            id,
            backpressure: Backpressure::Block,
            job,
        })
        .expect("send submit");
}

/// Collects frames until job `id`'s terminal (`done`/`error`/`timeout`).
fn collect_job(client: &mut Client, id: u64) -> Vec<Response> {
    let mut frames = Vec::new();
    loop {
        let frame = client
            .recv()
            .expect("recv frame")
            .expect("daemon hung up mid-job");
        let terminal = matches!(&frame, Response::Done { id: done, .. } if *done == id)
            || matches!(&frame, Response::Error { id: Some(e), .. } if *e == id)
            || matches!(&frame, Response::Timeout { id: t, .. } if *t == id);
        frames.push(frame);
        if terminal {
            return frames;
        }
    }
}

fn rows(frames: &[Response]) -> Vec<&RowFrame> {
    frames
        .iter()
        .filter_map(|f| match f {
            Response::Row(row) => Some(row),
            _ => None,
        })
        .collect()
}

/// One daemon, four phases: (1) an armed chaos hook panics exactly one
/// worker cell — the job aborts with a typed error frame and the panic
/// is counted; (2) disarmed, the same job completes — the panicked cell
/// was never cached; (3) the full job re-serves byte-identical entirely
/// from the cache; (4) a client that vanishes mid-job doesn't wedge
/// anything. The final `handle.join()` doubles as the no-leaked-threads
/// assertion: `Server::run` joins the pool, the accept thread and every
/// reader before returning.
#[test]
fn chaos_panics_and_disconnects_leave_a_clean_daemon() {
    std::env::set_var("RINGDEPLOYD_CHAOS_PANIC", "seed2");
    let (addr, handle) = start(DaemonConfig {
        workers: 2,
        queue_capacity: 4,
        cache_bytes: 1 << 20,
        max_jobs: 4,
    });
    let mut client = Client::connect(&addr).expect("connect");

    // Phase 1: cell `seed2` panics inside its worker. Rows 0 and 1
    // stream normally, then the job aborts with an error frame.
    submit(&mut client, 1, sweep_job(&[0, 1, 2, 3]));
    let frames = collect_job(&mut client, 1);
    let abort = frames.iter().find_map(|f| match f {
        Response::Error {
            id: Some(1),
            message,
        } => Some(message.clone()),
        _ => None,
    });
    let abort = abort.unwrap_or_else(|| panic!("injected panic must abort job 1: {frames:?}"));
    assert!(abort.contains("panic"), "typed panic message: {abort}");
    assert!(
        !frames.iter().any(|f| matches!(f, Response::Done { .. })),
        "an aborted job has no done frame"
    );
    assert_eq!(rows(&frames).len(), 2, "the prefix before the panic flows");

    // Phase 2: disarmed, the identical job completes — the panic left
    // no poisoned cache entry behind for `seed2`.
    std::env::remove_var("RINGDEPLOYD_CHAOS_PANIC");
    submit(&mut client, 2, sweep_job(&[0, 1, 2, 3]));
    let healthy = collect_job(&mut client, 2);
    let healthy_rows = rows(&healthy);
    assert_eq!(healthy_rows.len(), 4);
    assert!(
        healthy
            .iter()
            .any(|f| matches!(f, Response::Done { id: 2, .. })),
        "disarmed job completes: {healthy:?}"
    );

    // Phase 3: byte-identical cached re-serve of the whole job.
    submit(&mut client, 3, sweep_job(&[0, 1, 2, 3]));
    let warm = collect_job(&mut client, 3);
    let warm_rows = rows(&warm);
    assert_eq!(warm_rows.len(), 4);
    assert!(warm_rows.iter().all(|r| r.cached), "fully cached re-serve");
    for (cold, warm) in healthy_rows.iter().zip(&warm_rows) {
        assert_eq!(
            cold.payload.to_string(),
            warm.payload.to_string(),
            "cached payload must be byte-identical after the chaos run"
        );
        assert_eq!(cold.fingerprint, warm.fingerprint);
    }

    // Phase 4: a client that disconnects mid-job. Its job is cancelled,
    // in-flight cells drain into the cache, and the daemon keeps
    // serving everyone else.
    let mut doomed = Client::connect(&addr).expect("connect doomed client");
    submit(&mut doomed, 9, sweep_job(&[50, 51, 52, 53, 54, 55]));
    drop(doomed);
    submit(&mut client, 4, sweep_job(&[60]));
    let frames = collect_job(&mut client, 4);
    assert_eq!(
        rows(&frames).len(),
        1,
        "daemon still serves after a mid-job disconnect"
    );

    // Exactly one caught panic over the whole session, zero timeouts.
    client.send(&Request::Stats).expect("send stats");
    let report = match client.recv().expect("recv stats") {
        Some(Response::Stats(stats)) => stats,
        other => panic!("expected stats frame, got {other:?}"),
    };
    assert_eq!(report.panics, 1);
    assert_eq!(report.timeouts, 0);

    client.send(&Request::Shutdown).expect("send shutdown");
    loop {
        match client.recv().expect("recv during shutdown") {
            Some(Response::Bye) | None => break,
            Some(_) => {}
        }
    }
    let final_stats = handle.join().expect("server thread joins cleanly");
    assert_eq!(final_stats.panics, 1);
    assert_eq!(final_stats.completed_jobs, 3);
}
