//! Criterion bench for **Table 1**: wall-clock of each algorithm across the
//! `(n, k)` sweep. The measured quantity of record (moves/time/memory) is
//! produced by the `experiments` binary; this bench tracks simulation cost
//! and lets `--save-baseline` detect regressions in the algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_analysis::random_aperiodic_config;
use ringdeploy_core::{Algorithm, Deployment, Schedule};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    for algo in Algorithm::ALL {
        for (n, k) in [(64usize, 8usize), (256, 16), (1024, 32)] {
            let mut rng = SmallRng::seed_from_u64(42);
            let init = random_aperiodic_config(&mut rng, n, k);
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("n{n}_k{k}")),
                &init,
                |b, init| {
                    b.iter(|| {
                        let report = Deployment::of(black_box(init))
                            .algorithm(algo)
                            .schedule(Schedule::Random(7))
                            .expect("preset")
                            .run()
                            .expect("run");
                        assert!(report.succeeded());
                        black_box(report.metrics.total_moves())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
