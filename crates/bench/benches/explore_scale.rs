//! Exploration-engine benchmark: rotation-symmetry reduction and
//! frontier-parallel speedup of the exhaustive model checker.
//!
//! Three measurements per instance, all exploring the *same* state space:
//!
//! * **plain** — serial DFS, no symmetry quotient (`SymmetryMode::Off`):
//!   the pre-0.3 explorer's behavior;
//! * **reduced** — serial DFS over the rotation quotient
//!   (`SymmetryMode::Rotation`);
//! * **parallel** — frontier-parallel BFS over the rotation quotient with
//!   one worker per available core.
//!
//! On instances whose initial configuration has symmetry degree `l`, the
//! quotient cuts visited states by up to `l`× (asserted ≥3× for the
//! `l = 4` instances below). The parallel engine is asserted ≥2× faster
//! than the serial reference **when the host has ≥4 cores** — on smaller
//! hosts the speedup is recorded in the JSON but not enforced. (The
//! engine's fixed overhead bounds the risk of that gate: even fully
//! oversubscribed — two workers pinned to one core — the persistent
//! pool runs at 0.82–0.91× of serial, i.e. ≤ 18% overhead, so ≥4 real
//! cores have ample headroom over 2×.)
//!
//! Run with `cargo bench -p ringdeploy-bench --bench explore_scale`;
//! besides the table on stdout it writes `BENCH_explore.json` at the
//! workspace root (published as a CI artifact).

use std::time::{Duration, Instant};

use ringdeploy_analysis::explore_one;
use ringdeploy_core::Algorithm;
use ringdeploy_sim::explore::{ExploreLimits, ExploreReport, Explorer, SymmetryMode};
use ringdeploy_sim::InitialConfig;

struct Sample {
    algo: &'static str,
    n: usize,
    k: usize,
    symmetry_degree: usize,
    states_plain: usize,
    states_reduced: usize,
    plain: Duration,
    reduced: Duration,
    parallel: Duration,
}

impl Sample {
    fn reduction(&self) -> f64 {
        self.states_plain as f64 / self.states_reduced as f64
    }

    fn speedup(&self) -> f64 {
        self.reduced.as_secs_f64() / self.parallel.as_secs_f64()
    }
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn time_explore(
    algorithm: Algorithm,
    init: &InitialConfig,
    symmetry: SymmetryMode,
    threads: usize,
    repeats: usize,
) -> (ExploreReport, Duration) {
    let explorer = Explorer::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .symmetry(symmetry)
        .threads(threads);
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = explore_one(algorithm, init, &explorer).expect("exhaustive exploration succeeds");
        best = best.min(start.elapsed());
        report = Some(r);
    }
    (report.expect("at least one repeat"), best)
}

fn measure(algorithm: Algorithm, n: usize, homes: &[usize], repeats: usize) -> Sample {
    let algo = algorithm.name();
    let init = InitialConfig::new(n, homes.to_vec()).expect("valid homes");
    let (plain_report, plain) = time_explore(algorithm, &init, SymmetryMode::Off, 1, repeats);
    let (reduced_report, reduced) =
        time_explore(algorithm, &init, SymmetryMode::Rotation, 1, repeats);
    let (parallel_report, parallel) = time_explore(
        algorithm,
        &init,
        SymmetryMode::Rotation,
        cores().max(2),
        repeats,
    );
    assert_eq!(
        reduced_report.states, parallel_report.states,
        "parallel engine must agree with the serial reference"
    );
    assert_eq!(
        reduced_report.terminal_fingerprints, parallel_report.terminal_fingerprints,
        "parallel engine must agree with the serial reference"
    );
    Sample {
        algo,
        n,
        k: init.agent_count(),
        symmetry_degree: init.symmetry_degree(),
        states_plain: plain_report.states,
        states_reduced: reduced_report.states,
        plain,
        reduced,
        parallel,
    }
}

fn main() {
    let repeats = 3;
    let samples = vec![
        // Symmetric instances (l = 4): the quotient's best case.
        measure(Algorithm::FullKnowledge, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::LogSpace, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::Relaxed, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::FullKnowledge, 16, &[0, 4, 8, 12], repeats),
        // l = 6, six agents: large state space AND the deepest quotient.
        measure(Algorithm::FullKnowledge, 12, &[0, 2, 4, 6, 8, 10], repeats),
        // Aperiodic worst case (l = 1): no rotation to exploit, but the
        // largest per-state work — the parallel-speedup workload.
        measure(Algorithm::Relaxed, 12, &[0, 1, 2, 3], repeats),
    ];

    println!(
        "{:>8} {:>4} {:>3} {:>3} {:>9} {:>9} {:>6} {:>11} {:>11} {:>11} {:>8}",
        "algo",
        "n",
        "k",
        "l",
        "plain",
        "reduced",
        "cut",
        "plain_ms",
        "serial_ms",
        "par_ms",
        "speedup"
    );
    for s in &samples {
        println!(
            "{:>8} {:>4} {:>3} {:>3} {:>9} {:>9} {:>5.2}x {:>10.2} {:>10.2} {:>10.2} {:>7.2}x",
            s.algo,
            s.n,
            s.k,
            s.symmetry_degree,
            s.states_plain,
            s.states_reduced,
            s.reduction(),
            s.plain.as_secs_f64() * 1e3,
            s.reduced.as_secs_f64() * 1e3,
            s.parallel.as_secs_f64() * 1e3,
            s.speedup()
        );
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"algo\": \"{}\", \"n\": {}, \"k\": {}, \"symmetry_degree\": {}, \
                 \"states_plain\": {}, \"states_reduced\": {}, \"reduction\": {:.2}, \
                 \"plain_ms\": {:.3}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \
                 \"speedup\": {:.2}}}",
                s.algo,
                s.n,
                s.k,
                s.symmetry_degree,
                s.states_plain,
                s.states_reduced,
                s.reduction(),
                s.plain.as_secs_f64() * 1e3,
                s.reduced.as_secs_f64() * 1e3,
                s.parallel.as_secs_f64() * 1e3,
                s.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"explore_scale\",\n  \"cores\": {},\n  \
         \"parallel_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cores(),
        cores().max(2),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");

    // Symmetry reduction: ≥3× on every l = 4 instance.
    for s in samples.iter().filter(|s| s.symmetry_degree >= 4) {
        assert!(
            s.reduction() >= 3.0,
            "expected ≥3× state reduction on {} n={} (l={}): got {:.2}x",
            s.algo,
            s.n,
            s.symmetry_degree,
            s.reduction()
        );
    }
    // Parallel speedup: ≥2× over the serial reference, enforced only on
    // hosts with enough cores for the claim to be meaningful.
    if cores() >= 4 {
        let best = samples.iter().map(Sample::speedup).fold(f64::MIN, f64::max);
        assert!(
            best >= 2.0,
            "expected ≥2× parallel speedup on ≥4 cores (best {best:.2}x)"
        );
    } else {
        println!(
            "note: {} core(s) available — the ≥2× parallel-speedup gate needs ≥4 and was skipped",
            cores()
        );
    }
}
