//! Exploration-engine benchmark: expansion throughput of the reversible
//! clone-free engines, rotation-symmetry reduction, frontier memory and
//! work-stealing parallel speedup of the exhaustive model checker.
//!
//! Four measurements per instance, all exploring the *same* state space:
//!
//! * **reference** — the retained clone-based serial DFS
//!   (`Explorer::run_serial_reference`, the 0.4 engine): one deep ring
//!   clone per child expansion, full `O(n)` symbol rebuild per
//!   fingerprint;
//! * **plain** — the clone-free serial DFS without a symmetry quotient
//!   (`SymmetryMode::Off`);
//! * **serial** — the clone-free serial DFS over the rotation quotient:
//!   reversible `apply`/`undo` expansion, incremental canonical
//!   fingerprints (≤ 2 symbols re-derived per child);
//! * **parallel** — the work-stealing engine over the rotation quotient
//!   (per-worker clone-free DFS, delta-encoded `PackedState` steal
//!   handoffs, striped visited map) with one worker per available core.
//!
//! Parallel numbers are **honest about the host**: the timed parallel
//! run uses exactly `cores()` workers, and on hosts with fewer than two
//! cores no parallel timing is published at all — `parallel_ms` and
//! `speedup` are `null` in the JSON (a multi-worker run on one core
//! measures oversubscription, not speedup; an untimed two-worker pass
//! still checks report identity).
//!
//! Gates enforced by the bench itself:
//!
//! * **expansion throughput**: on the symmetry-degree-4 instances the
//!   clone-free serial engine must run ≥ 5× the reference engine's
//!   states/sec (the 0.5 acceptance bar, measured in-run so the gate is
//!   host-independent);
//! * **frontier memory**: a packed state must undercut half a deep clone;
//! * **symmetry reduction**: ≥ 3× state cut on the `l = 4` instances;
//! * **parallel speedup**: ≥ 2× over the clone-free serial engine on
//!   **every** `l = 4` instance **when the host has ≥ 4 cores** (skipped
//!   below that).
//!
//! Besides the table on stdout it writes `BENCH_explore.json` at the
//! workspace root (published as a CI artifact), including per-instance
//! `states_per_sec` and the peak frontier memory `peak_states_bytes`
//! (packed) vs `peak_states_bytes_clone` (what the 0.4 boxed-clone
//! frontier would have held at the same peak width).
//!
//! Run with `cargo bench -p ringdeploy-bench --bench explore_scale`.

use std::time::{Duration, Instant};

use ringdeploy_analysis::{explore_one, explore_one_reference, explore_one_serial};
use ringdeploy_core::{Algorithm, FullKnowledge, LogSpace, NoKnowledge};
use ringdeploy_sim::explore::{ExploreLimits, ExploreReport, Explorer, SymmetryMode};
use ringdeploy_sim::packed::{ring_heap_bytes, PackedState};
use ringdeploy_sim::{InitialConfig, Ring};

struct Sample {
    algo: &'static str,
    n: usize,
    k: usize,
    symmetry_degree: usize,
    states_plain: usize,
    states_reduced: usize,
    reference: Duration,
    plain: Duration,
    reduced: Duration,
    /// Timed work-stealing run at `cores()` workers; `None` on hosts with
    /// fewer than two cores (no honest parallel measurement exists
    /// there — see the module docs).
    parallel: Option<Duration>,
    /// Peak outstanding steal tasks of the parallel sweep (the states
    /// held as packed snapshots at once).
    peak_frontier: usize,
    /// Per-state heap bytes: packed snapshot vs deep ring clone.
    packed_bytes: usize,
    clone_bytes: usize,
}

impl Sample {
    fn reduction(&self) -> f64 {
        self.states_plain as f64 / self.states_reduced as f64
    }

    fn speedup(&self) -> Option<f64> {
        self.parallel
            .map(|parallel| self.reduced.as_secs_f64() / parallel.as_secs_f64())
    }

    fn states_per_sec(&self) -> f64 {
        self.states_reduced as f64 / self.reduced.as_secs_f64()
    }

    fn ref_states_per_sec(&self) -> f64 {
        self.states_reduced as f64 / self.reference.as_secs_f64()
    }

    /// In-run throughput gate: clone-free serial vs clone-based reference
    /// on the identical exploration.
    fn speedup_vs_reference(&self) -> f64 {
        self.reference.as_secs_f64() / self.reduced.as_secs_f64()
    }

    fn peak_states_bytes(&self) -> usize {
        self.peak_frontier * self.packed_bytes
    }

    fn peak_states_bytes_clone(&self) -> usize {
        self.peak_frontier * self.clone_bytes
    }
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The PR 3 throughput baselines the ≥5× gate compares against:
/// `(algo, n, pr3_states_per_sec, ref_calibration_states_per_sec)`.
///
/// * `pr3_states_per_sec` — the 0.4 serial engine's throughput from the
///   `BENCH_explore.json` committed by PR 3 (`states_reduced /
///   serial_ms`), measured in the repository's build container.
/// * `ref_calibration_states_per_sec` — the retained clone-based
///   reference engine's throughput measured in the *same container* at
///   0.5 calibration time. The reference runs the exact 0.4 expansion
///   algorithm (clone per child, full symbol rebuild), so on any host
///   `live_ref / ref_calibration` estimates the host's speed relative to
///   the calibration container, making the gate
///   `states_per_sec ≥ 5 × pr3 × host_scale` host-independent. (The
///   reference is somewhat faster than the recorded PR 3 numbers even at
///   scale 1 because the shared fingerprint internals — min-rotation and
///   sealing — got cheaper in 0.5; the gate deliberately compares against
///   the PR 3 engine as it actually shipped.)
const THROUGHPUT_BASELINES: &[(&str, usize, f64, f64)] = &[
    ("algo1-full-knowledge", 12, 195_222.0, 269_064.0),
    ("algo2-log-space", 12, 174_034.0, 242_493.0),
    ("algo4-relaxed", 12, 161_294.0, 230_933.0),
    ("algo1-full-knowledge", 16, 154_810.0, 213_818.0),
];

/// `(pr3_states_per_sec, ref_calibration_states_per_sec)` for a gated
/// instance, `None` for instances without a PR 3 baseline.
fn baseline_for(algo: &str, n: usize, l: usize) -> Option<(f64, f64)> {
    THROUGHPUT_BASELINES
        .iter()
        .find(|&&(a, bn, _, _)| a == algo && bn == n && l == 4)
        .map(|&(_, _, pr3, calib)| (pr3, calib))
}

/// Per-state heap footprint of this instance's root configuration:
/// (packed snapshot bytes, deep-clone bytes). Mid-run states have the
/// same shape (the packed layout is size-stable in `n` and `k`), so the
/// root is a fair per-state representative.
fn state_bytes(algorithm: Algorithm, init: &InitialConfig) -> (usize, usize) {
    fn of<B>(ring: &Ring<B>) -> (usize, usize)
    where
        B: ringdeploy_sim::Behavior + Clone,
        B::Message: Clone,
    {
        (PackedState::pack(ring).heap_bytes(), ring_heap_bytes(ring))
    }
    let k = init.agent_count();
    if algorithm == Algorithm::FullKnowledge {
        of(&Ring::new(init, |_| FullKnowledge::new(k)))
    } else if algorithm == Algorithm::LogSpace {
        of(&Ring::new(init, |_| LogSpace::new(k)))
    } else {
        of(&Ring::new(init, |_| NoKnowledge::new()))
    }
}

fn explorer_for(init: &InitialConfig, symmetry: SymmetryMode, threads: usize) -> Explorer {
    Explorer::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .symmetry(symmetry)
        .threads(threads)
}

fn best_of(repeats: usize, mut run: impl FnMut() -> ExploreReport) -> (ExploreReport, Duration) {
    let mut best = Duration::MAX;
    let mut report = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = run();
        best = best.min(start.elapsed());
        report = Some(r);
    }
    (report.expect("at least one repeat"), best)
}

fn measure(algorithm: Algorithm, n: usize, homes: &[usize], repeats: usize) -> Sample {
    let algo = algorithm.name();
    let init = InitialConfig::new(n, homes.to_vec()).expect("valid homes");
    let (reference_report, reference) = best_of(repeats, || {
        explore_one_reference(
            algorithm,
            &init,
            &explorer_for(&init, SymmetryMode::Rotation, 1),
        )
        .expect("reference exploration succeeds")
    });
    let (plain_report, plain) = best_of(repeats, || {
        explore_one_serial(algorithm, &init, &explorer_for(&init, SymmetryMode::Off, 1))
            .expect("plain exploration succeeds")
    });
    let (reduced_report, reduced) = best_of(repeats, || {
        explore_one_serial(
            algorithm,
            &init,
            &explorer_for(&init, SymmetryMode::Rotation, 1),
        )
        .expect("serial exploration succeeds")
    });
    // Timed parallel run only where an honest measurement exists (≥ 2
    // cores, exactly one worker per core); on single-core hosts an
    // *untimed* two-worker pass still exercises the work-stealing engine
    // so the report-identity assertions below hold everywhere.
    let (parallel_report, parallel) = if cores() >= 2 {
        let (report, elapsed) = best_of(repeats, || {
            explore_one(
                algorithm,
                &init,
                &explorer_for(&init, SymmetryMode::Rotation, cores()),
            )
            .expect("parallel exploration succeeds")
        });
        (report, Some(elapsed))
    } else {
        let report = explore_one(
            algorithm,
            &init,
            &explorer_for(&init, SymmetryMode::Rotation, 2),
        )
        .expect("parallel exploration succeeds");
        (report, None)
    };
    assert_eq!(
        reduced_report.states, reference_report.states,
        "clone-free serial must agree with the clone-based reference"
    );
    assert_eq!(
        reduced_report.terminal_fingerprints, reference_report.terminal_fingerprints,
        "clone-free serial must agree with the clone-based reference"
    );
    assert_eq!(
        reduced_report.merge_edges, reference_report.merge_edges,
        "clone-free serial must agree with the clone-based reference"
    );
    assert_eq!(
        reduced_report.states, parallel_report.states,
        "parallel engine must agree with the serial engine"
    );
    assert_eq!(
        reduced_report.terminal_fingerprints, parallel_report.terminal_fingerprints,
        "parallel engine must agree with the serial engine"
    );
    assert_eq!(
        reduced_report.merge_edges, parallel_report.merge_edges,
        "parallel engine must agree with the serial engine"
    );
    let (packed_bytes, clone_bytes) = state_bytes(algorithm, &init);
    Sample {
        algo,
        n,
        k: init.agent_count(),
        symmetry_degree: init.symmetry_degree(),
        states_plain: plain_report.states,
        states_reduced: reduced_report.states,
        reference,
        plain,
        reduced,
        parallel,
        peak_frontier: parallel_report.peak_frontier,
        packed_bytes,
        clone_bytes,
    }
}

fn main() {
    let repeats = 3;
    let samples = vec![
        // Symmetric instances (l = 4): the quotient's best case.
        measure(Algorithm::FullKnowledge, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::LogSpace, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::Relaxed, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::FullKnowledge, 16, &[0, 4, 8, 12], repeats),
        // l = 6, six agents: large state space AND the deepest quotient.
        measure(Algorithm::FullKnowledge, 12, &[0, 2, 4, 6, 8, 10], repeats),
        // Aperiodic worst case (l = 1): no rotation to exploit, but the
        // largest per-state work — the parallel-speedup workload.
        measure(Algorithm::Relaxed, 12, &[0, 1, 2, 3], repeats),
    ];

    println!(
        "{:>8} {:>4} {:>3} {:>3} {:>9} {:>9} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8} {:>10} {:>9}",
        "algo",
        "n",
        "k",
        "l",
        "plain",
        "reduced",
        "cut",
        "ref_ms",
        "serial_ms",
        "par_ms",
        "vs_ref",
        "speedup",
        "kstates/s",
        "peak_KiB"
    );
    for s in &samples {
        let par_ms = s
            .parallel
            .map_or("-".to_string(), |p| format!("{:.2}", p.as_secs_f64() * 1e3));
        let speedup = s.speedup().map_or("-".to_string(), |x| format!("{x:.2}x"));
        println!(
            "{:>8} {:>4} {:>3} {:>3} {:>9} {:>9} {:>5.2}x {:>9.2} {:>9.2} {:>9} {:>7.2}x {:>8} {:>10.1} {:>9.1}",
            s.algo,
            s.n,
            s.k,
            s.symmetry_degree,
            s.states_plain,
            s.states_reduced,
            s.reduction(),
            s.reference.as_secs_f64() * 1e3,
            s.reduced.as_secs_f64() * 1e3,
            par_ms,
            s.speedup_vs_reference(),
            speedup,
            s.states_per_sec() / 1e3,
            s.peak_states_bytes() as f64 / 1024.0
        );
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            let vs_pr3 = match baseline_for(s.algo, s.n, s.symmetry_degree) {
                Some((pr3, calib)) => {
                    let host_scale = s.ref_states_per_sec() / calib;
                    format!("{:.2}", s.states_per_sec() / (pr3 * host_scale))
                }
                None => "null".to_string(),
            };
            // 1-core hosts publish `null` for the parallel columns: a
            // multi-worker timing there would be a measurement of
            // oversubscription, not of the engine.
            let parallel_ms = s.parallel.map_or("null".to_string(), |p| {
                format!("{:.3}", p.as_secs_f64() * 1e3)
            });
            let speedup = s
                .speedup()
                .map_or("null".to_string(), |x| format!("{x:.2}"));
            format!(
                "    {{\"algo\": \"{}\", \"n\": {}, \"k\": {}, \"symmetry_degree\": {}, \
                 \"states_plain\": {}, \"states_reduced\": {}, \"reduction\": {:.2}, \
                 \"reference_ms\": {:.3}, \"plain_ms\": {:.3}, \"serial_ms\": {:.3}, \
                 \"parallel_ms\": {parallel_ms}, \"speedup\": {speedup}, \
                 \"states_per_sec\": {:.0}, \"ref_states_per_sec\": {:.0}, \
                 \"serial_speedup_vs_ref\": {:.2}, \"serial_speedup_vs_pr3\": {vs_pr3}, \
                 \"peak_frontier\": {}, \
                 \"packed_state_bytes\": {}, \"clone_state_bytes\": {}, \
                 \"peak_states_bytes\": {}, \"peak_states_bytes_clone\": {}}}",
                s.algo,
                s.n,
                s.k,
                s.symmetry_degree,
                s.states_plain,
                s.states_reduced,
                s.reduction(),
                s.reference.as_secs_f64() * 1e3,
                s.plain.as_secs_f64() * 1e3,
                s.reduced.as_secs_f64() * 1e3,
                s.states_per_sec(),
                s.ref_states_per_sec(),
                s.speedup_vs_reference(),
                s.peak_frontier,
                s.packed_bytes,
                s.clone_bytes,
                s.peak_states_bytes(),
                s.peak_states_bytes_clone(),
            )
        })
        .collect();
    // The honest thread count: the workers the *timed* parallel runs
    // actually used, `null` when no parallel timing was taken.
    let parallel_threads = if cores() >= 2 {
        cores().to_string()
    } else {
        "null".to_string()
    };
    let json = format!(
        "{{\n  \"benchmark\": \"explore_scale\",\n  \"cores\": {},\n  \
         \"parallel_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        cores(),
        parallel_threads,
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");

    // Expansion throughput: the clone-free serial engine must deliver ≥5×
    // the PR 3 engine's states/sec on every l = 4 instance — the 0.5
    // acceptance gate. The PR 3 baseline is scaled to this host via the
    // retained reference engine (see `THROUGHPUT_BASELINES`).
    for s in samples.iter() {
        let Some((pr3, calib)) = baseline_for(s.algo, s.n, s.symmetry_degree) else {
            continue;
        };
        let host_scale = s.ref_states_per_sec() / calib;
        let vs_pr3 = s.states_per_sec() / (pr3 * host_scale);
        assert!(
            vs_pr3 >= 5.0,
            "expected ≥5× serial states/sec vs the PR 3 baseline on {} n={} (l={}): got \
             {:.2}x ({:.0} states/s vs a host-scaled baseline of {:.0}; host scale {:.2})",
            s.algo,
            s.n,
            s.symmetry_degree,
            vs_pr3,
            s.states_per_sec(),
            pr3 * host_scale,
            host_scale
        );
    }
    // Packed frontier memory: a packed state must be well under half a
    // deep clone on every instance (measured ~5–10× smaller).
    for s in &samples {
        assert!(
            s.packed_bytes * 2 < s.clone_bytes,
            "packed state ({} B) must undercut a deep clone ({} B) on {} n={}",
            s.packed_bytes,
            s.clone_bytes,
            s.algo,
            s.n
        );
    }
    // Symmetry reduction: ≥3× on every l = 4 instance.
    for s in samples.iter().filter(|s| s.symmetry_degree >= 4) {
        assert!(
            s.reduction() >= 3.0,
            "expected ≥3× state reduction on {} n={} (l={}): got {:.2}x",
            s.algo,
            s.n,
            s.symmetry_degree,
            s.reduction()
        );
    }
    // Parallel speedup: ≥2× over the serial reference, enforced only on
    // hosts with enough cores for the claim to be meaningful.
    if cores() >= 4 {
        for s in samples.iter().filter(|s| s.symmetry_degree >= 4) {
            let speedup = s
                .speedup()
                .expect("timed parallel run exists on multi-core hosts");
            assert!(
                speedup >= 2.0,
                "expected ≥2× parallel speedup on ≥4 cores for n={} l={} (got {speedup:.2}x)",
                s.n,
                s.symmetry_degree
            );
        }
    } else {
        println!(
            "note: {} core(s) available — the ≥2× parallel-speedup gate needs ≥4 and was skipped",
            cores()
        );
    }
}
