//! Step-loop microbenchmark: the incremental `EnabledSet` engine against
//! the retained full-rescan reference (`Ring::enabled_rescan`).
//!
//! Both drivers execute the *same* schedule (round-robin over Algorithm 1
//! on a clustered large ring), so the measured difference is purely the
//! per-step cost of computing the enabled activations:
//!
//! * **incremental** — `Ring::run`, which hands the scheduler the
//!   maintained set (`O(k)` per step, independent of `n`);
//! * **rescan** — a hand-rolled loop calling `enabled_rescan()` before
//!   every step (`Θ(n + k)` per step), the engine's pre-0.3 behavior.
//!   (The rescan loop still pays the incremental upkeep inside `step()`,
//!   so the reported speedup is a conservative lower bound.)
//!
//! Run with `cargo bench -p ringdeploy-bench --bench engine_step`; besides
//! the table on stdout it writes the results to `BENCH_engine.json` at the
//! workspace root (published as a CI artifact).

use std::time::{Duration, Instant};

use ringdeploy_core::FullKnowledge;
use ringdeploy_sim::scheduler::{RoundRobin, Scheduler};
use ringdeploy_sim::{InitialConfig, Ring, RunLimits};

struct Sample {
    n: usize,
    k: usize,
    steps: u64,
    incremental: Duration,
    rescan: Duration,
}

impl Sample {
    fn speedup(&self) -> f64 {
        self.rescan.as_secs_f64() / self.incremental.as_secs_f64()
    }

    fn ns_per_step(&self, total: Duration) -> f64 {
        total.as_secs_f64() * 1e9 / self.steps as f64
    }
}

fn clustered(n: usize, k: usize) -> InitialConfig {
    InitialConfig::new(n, (0..k).collect()).expect("valid homes")
}

fn run_incremental(n: usize, k: usize) -> (u64, Duration) {
    let init = clustered(n, k);
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(k));
    let mut scheduler = RoundRobin::new();
    let start = Instant::now();
    let out = ring
        .run(&mut scheduler, RunLimits::for_instance(n, k))
        .expect("quiesces");
    (out.steps, start.elapsed())
}

fn run_rescan(n: usize, k: usize) -> (u64, Duration) {
    let init = clustered(n, k);
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(k));
    let mut scheduler = RoundRobin::new();
    let mut steps = 0u64;
    let start = Instant::now();
    loop {
        let enabled = ring.enabled_rescan();
        if enabled.is_empty() {
            return (steps, start.elapsed());
        }
        let chosen = scheduler.select(&enabled);
        ring.step(enabled[chosen]);
        steps += 1;
    }
}

fn measure(n: usize, k: usize, repeats: usize) -> Sample {
    let mut incremental = Duration::MAX;
    let mut rescan = Duration::MAX;
    let mut steps = 0;
    for _ in 0..repeats {
        let (s, d) = run_incremental(n, k);
        steps = s;
        incremental = incremental.min(d);
        let (s2, d2) = run_rescan(n, k);
        assert_eq!(s, s2, "both drivers must execute the same schedule");
        rescan = rescan.min(d2);
    }
    Sample {
        n,
        k,
        steps,
        incremental,
        rescan,
    }
}

fn main() {
    let configs = [(256usize, 16usize), (1024, 16), (4096, 16), (4096, 64)];
    println!(
        "{:>6} {:>4} {:>9} {:>16} {:>16} {:>9}",
        "n", "k", "steps", "incremental", "rescan", "speedup"
    );
    let mut samples = Vec::new();
    for (n, k) in configs {
        let sample = measure(n, k, 3);
        println!(
            "{:>6} {:>4} {:>9} {:>13.1} ns {:>13.1} ns {:>8.2}x",
            sample.n,
            sample.k,
            sample.steps,
            sample.ns_per_step(sample.incremental),
            sample.ns_per_step(sample.rescan),
            sample.speedup()
        );
        samples.push(sample);
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"n\": {}, \"k\": {}, \"steps\": {}, \
                 \"incremental_ns_per_step\": {:.1}, \
                 \"rescan_ns_per_step\": {:.1}, \"speedup\": {:.2}}}",
                s.n,
                s.k,
                s.steps,
                s.ns_per_step(s.incremental),
                s.ns_per_step(s.rescan),
                s.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"engine_step\",\n  \"scheduler\": \"round-robin\",\n  \
         \"algorithm\": \"algo1-full-knowledge\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("\nwrote {path}");

    let large = samples.iter().filter(|s| s.n >= 1024);
    for s in large {
        assert!(
            s.speedup() >= 2.0,
            "expected ≥2x speedup at n = {} (got {:.2}x)",
            s.n,
            s.speedup()
        );
    }

    // Absolute regression gate on the hot path itself (not just vs the
    // rescan reference): the k = 64 / n = 4096 row measured 244.3 ns per
    // incremental step before the SoA refactor, the `EnabledSet` hole
    // recycling, the round-robin early-exit scan, and the `memory_bits`
    // cache. The ≥1.5× budget from that baseline is 163 ns; the four
    // optimisations together land around 80 ns, so the gate has ~2×
    // headroom against machine noise while still catching any O(k)
    // regression sneaking back into the per-step loop.
    let hot = samples
        .iter()
        .find(|s| s.n == 4096 && s.k == 64)
        .expect("the k = 64 hot-path row is part of the fixed config set");
    let hot_ns = hot.ns_per_step(hot.incremental);
    assert!(
        hot_ns <= 163.0,
        "hot-path regression: n = 4096, k = 64 incremental step took {hot_ns:.1} ns \
         (gate: ≤163 ns, i.e. ≥1.5x over the 244.3 ns pre-SoA baseline)"
    );
}
