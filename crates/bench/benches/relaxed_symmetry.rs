//! Criterion bench for **Result 4 / Fig. 11**: the relaxed algorithm's
//! adaptivity to the symmetry degree `l`. Wall-clock (and the asserted
//! move budget 14·kn/l) must *shrink* as `l` grows at fixed `(n, k)` —
//! the paper's `O(kn/l)` claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ringdeploy_analysis::periodic_config;
use ringdeploy_core::{Algorithm, Deployment, Schedule};
use std::hint::black_box;

fn bench_relaxed_symmetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("relaxed_symmetry_degree");
    let (n, k) = (512usize, 32usize);
    for l in [1usize, 2, 4, 8, 16, 32] {
        let init = periodic_config(n, k, l);
        group.bench_with_input(BenchmarkId::from_parameter(l), &init, |b, init| {
            b.iter(|| {
                let report = Deployment::of(black_box(init))
                    .algorithm(Algorithm::Relaxed)
                    .schedule(Schedule::RoundRobin)
                    .expect("preset")
                    .run()
                    .expect("run");
                assert!(report.succeeded());
                let moves = report.metrics.total_moves();
                // O(kn/l) with the paper's constant 14.
                assert!(moves <= 14 * (k * n / l) as u64 + (k * n / l) as u64);
                black_box(moves)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_relaxed_symmetry);
criterion_main!(benches);
