//! Criterion bench for the sequence substrate: Booth's minimal rotation vs
//! the quadratic reference, and period/symmetry computations — the inner
//! loops of every algorithm's selection phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy_seq::{cyclic_period, min_rotation, min_rotation_naive, symmetry_degree};
use std::hint::black_box;

fn random_seq(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(1u64..8)).collect()
}

fn bench_min_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_rotation");
    for len in [64usize, 1024, 16384] {
        let seq = random_seq(len, 7);
        group.bench_with_input(BenchmarkId::new("booth", len), &seq, |b, s| {
            b.iter(|| black_box(min_rotation(black_box(s))))
        });
        if len <= 1024 {
            group.bench_with_input(BenchmarkId::new("naive", len), &seq, |b, s| {
                b.iter(|| black_box(min_rotation_naive(black_box(s))))
            });
        }
    }
    group.finish();
}

fn bench_periods(c: &mut Criterion) {
    let mut group = c.benchmark_group("periods");
    for len in [64usize, 4096] {
        let seq = random_seq(len, 9);
        group.bench_with_input(BenchmarkId::new("cyclic_period", len), &seq, |b, s| {
            b.iter(|| black_box(cyclic_period(black_box(s))))
        });
        group.bench_with_input(BenchmarkId::new("symmetry_degree", len), &seq, |b, s| {
            b.iter(|| black_box(symmetry_degree(black_box(s))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_min_rotation, bench_periods);
criterion_main!(benches);
