//! Criterion bench for the **§5 extension**: Euler-tour construction and
//! end-to-end deployment on trees/graphs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_core::{Algorithm, Schedule};
use ringdeploy_embed::{deploy_on_tree, EulerTour, Graph, Tree};
use std::hint::black_box;

fn bench_euler_tour(c: &mut Criterion) {
    let mut group = c.benchmark_group("euler_tour");
    for n in [64usize, 512, 4096] {
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = Tree::random(&mut rng, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, t| {
            b.iter(|| black_box(EulerTour::new(black_box(t), 0).ring_size()))
        });
    }
    group.finish();
}

fn bench_tree_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_deployment");
    for n in [32usize, 128] {
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = Tree::random(&mut rng, n);
        let agents: Vec<usize> = (0..8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, t| {
            b.iter(|| {
                let report = deploy_on_tree(
                    black_box(t),
                    &agents,
                    Algorithm::LogSpace,
                    Schedule::Random(4),
                )
                .expect("run");
                assert!(report.ring_report.succeeded());
                black_box(report.patrol_latency)
            })
        });
    }
    group.finish();
}

fn bench_grid_deployment(c: &mut Criterion) {
    let grid = Graph::grid(8, 8);
    let tree = grid.spanning_tree(0);
    let agents: Vec<usize> = (0..6).collect();
    c.bench_function("grid8x8_deployment", |b| {
        b.iter(|| {
            let report = deploy_on_tree(
                black_box(&tree),
                &agents,
                Algorithm::FullKnowledge,
                Schedule::RoundRobin,
            )
            .expect("run");
            assert!(report.ring_report.succeeded());
            black_box(report.ring_report.metrics.total_moves())
        })
    });
}

criterion_group!(
    benches,
    bench_euler_tour,
    bench_tree_deployment,
    bench_grid_deployment
);
criterion_main!(benches);
