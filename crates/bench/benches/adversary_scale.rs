//! Adversary-engine benchmark: branch-and-bound worst-case search
//! throughput and pruning effectiveness.
//!
//! Two measurements per instance, both computing the **same exact
//! worst-case total moves**:
//!
//! * **pruned** — the production configuration: `SymmetryMode::Dihedral`
//!   (rotation + reflection + relabeling) remaining-value memoisation
//!   plus the admissible move-bound prune — a child whose canonical
//!   fingerprint is already solved folds its whole subtree in `O(1)`,
//!   and a child whose optimistic remaining-move bound cannot beat an
//!   already-attained sibling is cut before expansion;
//! * **unpruned** — the same search over the plain (unquotiented)
//!   configuration space (`SymmetryMode::Off`) with the bound prune
//!   disabled: the memo only merges exact concrete re-encounters, so
//!   every reachable concrete configuration is enumerated — the
//!   exhaustive-enumeration baseline.
//!
//! Gates enforced by the bench itself:
//!
//! * **answer identity**: both modes must report the same worst-case
//!   value (the objective is invariant under the dihedral fold whenever
//!   the fold completes, and the bound prune is admissible; see
//!   `ringdeploy-sim::adversary` and DESIGN.md §0.11);
//! * **linear work**: the exact remaining-value memo expands every
//!   distinct state at most once, so `pruned_expansions ≤
//!   distinct_states` on every instance;
//! * **pruning effectiveness**: on the symmetry-degree-4 instances the
//!   pruned search must expand **≤ 1/3** of the states the unpruned
//!   enumeration expands, on the `l = 2` instance **> 1.5×**, and on
//!   the aperiodic (`l = 1`) full-knowledge instance — where no
//!   symmetry fold can apply at all — the admissible move-bound prune
//!   must fire and strictly shrink the search (measured ~1.01×; see
//!   DESIGN.md §0.11 for why the aperiodic cut is structurally small).
//!
//! Besides the table on stdout it writes `BENCH_adversary.json` at the
//! workspace root (published as a CI artifact), including per-instance
//! `states_per_sec` (pruned expansions / second), the pruning ratio,
//! the competitive ratio of the worst case versus the offline oracle,
//! and an `already_uniform` label: on rows where the initial placement
//! is already uniform (`l = k`), `oracle_moves: 0` is the *correct*
//! offline optimum — the null competitive ratio means the denominator
//! is legitimately zero, not that data is missing.
//!
//! Run with `cargo bench -p ringdeploy-bench --bench adversary_scale`.

use std::time::{Duration, Instant};

use ringdeploy_analysis::{oracle_moves, worst_case_one, Adversary, Objective, WorstCase};
use ringdeploy_core::Algorithm;
use ringdeploy_sim::explore::{ExploreLimits, SymmetryMode};
use ringdeploy_sim::InitialConfig;

struct Sample {
    algo: &'static str,
    n: usize,
    k: usize,
    symmetry_degree: usize,
    value: u64,
    witness_len: usize,
    distinct_states: usize,
    pruned_expansions: usize,
    unpruned_expansions: usize,
    pruned: Duration,
    unpruned: Duration,
    oracle: u64,
    bound_prunes: u64,
}

impl Sample {
    /// Unpruned-enumeration expansions per pruned expansion — how much
    /// work the dominance quotient saves.
    fn pruning_ratio(&self) -> f64 {
        self.unpruned_expansions as f64 / self.pruned_expansions as f64
    }

    fn states_per_sec(&self) -> f64 {
        self.pruned_expansions as f64 / self.pruned.as_secs_f64()
    }

    fn competitive_ratio(&self) -> Option<f64> {
        (self.oracle > 0).then(|| self.value as f64 / self.oracle as f64)
    }

    /// `l = k`: the homes are invariant under rotation by `n/k`, i.e.
    /// equally spaced — the instance starts out uniformly deployed and
    /// the offline optimum is genuinely zero.
    fn already_uniform(&self) -> bool {
        self.symmetry_degree == self.k
    }
}

fn best_of(repeats: usize, mut run: impl FnMut() -> WorstCase) -> (WorstCase, Duration) {
    let mut best = Duration::MAX;
    let mut worst_case = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let w = run();
        best = best.min(start.elapsed());
        worst_case = Some(w);
    }
    (worst_case.expect("at least one repeat"), best)
}

fn measure(algorithm: Algorithm, n: usize, homes: &[usize], repeats: usize) -> Sample {
    let init = InitialConfig::new(n, homes.to_vec()).expect("valid homes");
    let limits = ExploreLimits::for_instance(n, init.agent_count());
    let engine = |symmetry, bound_prune| {
        Adversary::new()
            .limits(limits)
            .symmetry(symmetry)
            .bound_prune(bound_prune)
    };
    let (pruned_case, pruned) = best_of(repeats, || {
        worst_case_one(
            algorithm,
            &init,
            &engine(SymmetryMode::Dihedral, true),
            Objective::TotalMoves,
        )
        .expect("pruned search succeeds")
    });
    let (unpruned_case, unpruned) = best_of(repeats, || {
        worst_case_one(
            algorithm,
            &init,
            &engine(SymmetryMode::Off, false),
            Objective::TotalMoves,
        )
        .expect("unpruned search succeeds")
    });
    assert_eq!(
        pruned_case.value,
        unpruned_case.value,
        "pruned and unpruned searches must agree on the worst case \
         ({} n={n})",
        algorithm.name()
    );
    Sample {
        algo: algorithm.name(),
        n,
        k: init.agent_count(),
        symmetry_degree: init.symmetry_degree(),
        value: pruned_case.value,
        witness_len: pruned_case.witness.len(),
        distinct_states: pruned_case.distinct_states,
        pruned_expansions: pruned_case.expansions,
        unpruned_expansions: unpruned_case.expansions,
        pruned,
        unpruned,
        oracle: oracle_moves(&init).total_moves,
        bound_prunes: pruned_case.bound_prunes,
    }
}

fn main() {
    let repeats = 3;
    let samples = vec![
        // Symmetric instances (l = k = 4): the quotient's best case — and
        // the gated tier. These start out *already uniform*, so their
        // oracle optimum is genuinely 0 and the competitive ratio has no
        // denominator (labeled `already_uniform` in the JSON).
        measure(Algorithm::FullKnowledge, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::LogSpace, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::Relaxed, 12, &[0, 3, 6, 9], repeats),
        measure(Algorithm::FullKnowledge, 16, &[0, 4, 8, 12], repeats),
        // Periodic but clustered (l = 2 < k): a symmetric instance with a
        // nonzero offline optimum, so the symmetric tier also reports a
        // real competitive ratio.
        measure(Algorithm::FullKnowledge, 8, &[0, 1, 4, 5], repeats),
        // Aperiodic clustered worst case (l = 1): no rotation to exploit —
        // the dihedral fold and the admissible move-bound prune carry the
        // whole cut here, gated on the full-knowledge row.
        measure(Algorithm::FullKnowledge, 12, &[0, 1, 2, 3], repeats),
        measure(Algorithm::Relaxed, 12, &[0, 1, 2, 3], repeats),
    ];

    println!(
        "{:>8} {:>4} {:>3} {:>3} {:>7} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10}",
        "algo",
        "n",
        "k",
        "l",
        "worst",
        "witness",
        "pruned",
        "unpruned",
        "prune_ms",
        "full_ms",
        "ratio",
        "kstates/s"
    );
    for s in &samples {
        println!(
            "{:>8} {:>4} {:>3} {:>3} {:>7} {:>8} {:>9} {:>9} {:>9.2} {:>9.2} {:>6.2}x {:>10.1}",
            s.algo,
            s.n,
            s.k,
            s.symmetry_degree,
            s.value,
            s.witness_len,
            s.pruned_expansions,
            s.unpruned_expansions,
            s.pruned.as_secs_f64() * 1e3,
            s.unpruned.as_secs_f64() * 1e3,
            s.pruning_ratio(),
            s.states_per_sec() / 1e3,
        );
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            let competitive = s
                .competitive_ratio()
                .map(|r| format!("{r:.2}"))
                .unwrap_or_else(|| "null".to_string());
            format!(
                "    {{\"algo\": \"{}\", \"n\": {}, \"k\": {}, \"symmetry_degree\": {}, \
                 \"worst_moves\": {}, \"witness_len\": {}, \"oracle_moves\": {}, \
                 \"already_uniform\": {}, \"competitive_ratio\": {competitive}, \
                 \"distinct_states\": {}, \"pruned_expansions\": {}, \
                 \"unpruned_expansions\": {}, \"bound_prunes\": {}, \
                 \"pruning_ratio\": {:.2}, \"pruned_ms\": {:.3}, \"unpruned_ms\": {:.3}, \
                 \"states_per_sec\": {:.0}}}",
                s.algo,
                s.n,
                s.k,
                s.symmetry_degree,
                s.value,
                s.witness_len,
                s.oracle,
                s.already_uniform(),
                s.distinct_states,
                s.pruned_expansions,
                s.unpruned_expansions,
                s.bound_prunes,
                s.pruning_ratio(),
                s.pruned.as_secs_f64() * 1e3,
                s.unpruned.as_secs_f64() * 1e3,
                s.states_per_sec(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"adversary_scale\",\n  \"objective\": \"total-moves\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adversary.json");
    std::fs::write(path, &json).expect("write BENCH_adversary.json");
    println!("\nwrote {path}");

    // Linear work: the exact remaining-value memo solves each distinct
    // state once, so expansions can never exceed the reachable state
    // count — on any instance.
    for s in &samples {
        assert!(
            s.pruned_expansions <= s.distinct_states,
            "memoised search must expand each state at most once on {} n={}: \
             {} expansions > {} states",
            s.algo,
            s.n,
            s.pruned_expansions,
            s.distinct_states
        );
    }

    // Label honesty: `already_uniform` (l = k, equally spaced homes) must
    // coincide exactly with a zero offline optimum — the field exists so
    // `oracle_moves: 0` / `competitive_ratio: null` reads as "nothing to
    // do", never as missing data.
    for s in &samples {
        assert_eq!(
            s.already_uniform(),
            s.oracle == 0,
            "{} n={} (l={}): already_uniform label disagrees with the oracle ({} moves)",
            s.algo,
            s.n,
            s.symmetry_degree,
            s.oracle
        );
    }

    // Pruning effectiveness: on every l = 4 instance the memoised search
    // must expand at most a third of the unpruned enumeration — the
    // acceptance gate of the adversarial-search subsystem.
    for s in samples.iter().filter(|s| s.symmetry_degree >= 4) {
        assert!(
            s.pruned_expansions * 3 <= s.unpruned_expansions,
            "expected ≤1/3 of unpruned expansions on {} n={} (l={}): {} vs {}",
            s.algo,
            s.n,
            s.symmetry_degree,
            s.pruned_expansions,
            s.unpruned_expansions
        );
    }

    // The intermediate tier: on the periodic-but-clustered l = 2
    // instance the quotient alone (no move bound applies to its mixed
    // phases) must still halve the enumeration's work.
    for s in samples.iter().filter(|s| s.symmetry_degree == 2) {
        assert!(
            s.pruning_ratio() > 1.5,
            "expected >1.5x pruning on {} n={} (l=2): {} vs {} ({}x)",
            s.algo,
            s.n,
            s.pruned_expansions,
            s.unpruned_expansions,
            s.pruning_ratio()
        );
    }

    // The former blind spot: on the aperiodic (l = 1) full-knowledge
    // instance no symmetry fold can apply (rotating or reflecting a
    // reachable state yields a state of a *different* initial
    // configuration), so the admissible move-bound prune is the only
    // lever — and the FIFO queue-blocking that keeps the state space
    // small in the first place also keeps the all-agents-deployed
    // region (where the bound is exact) thin. Gate what the subsystem
    // guarantees: the prune fires, it strictly shrinks the expansion
    // count, and (asserted in `measure`) it never changes the value.
    // Measured: ~1.01× on this row; see DESIGN.md §0.11 for why a large
    // aperiodic quotient is structurally out of reach.
    let blind_spot = samples
        .iter()
        .find(|s| s.symmetry_degree == 1 && s.algo == Algorithm::FullKnowledge.name())
        .expect("the aperiodic full-knowledge row is in the sample set");
    assert!(
        blind_spot.bound_prunes > 0,
        "the move-bound prune must fire on the aperiodic {} n={} row",
        blind_spot.algo,
        blind_spot.n
    );
    assert!(
        blind_spot.pruned_expansions < blind_spot.unpruned_expansions,
        "the prune must strictly shrink the aperiodic {} n={} search: {} vs {}",
        blind_spot.algo,
        blind_spot.n,
        blind_spot.pruned_expansions,
        blind_spot.unpruned_expansions
    );
}
