//! Criterion bench for **Theorem 1 / Fig. 3**: the quarter-ring workload,
//! where every algorithm must pay Ω(kn) moves. Throughput in simulated
//! moves per second is the interesting axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ringdeploy_analysis::quarter_ring_config;
use ringdeploy_core::{Algorithm, Deployment, Schedule};
use std::hint::black_box;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound_quarter_ring");
    for (n, k) in [(128usize, 16usize), (512, 64)] {
        let init = quarter_ring_config(n, k);
        group.throughput(Throughput::Elements((n * k) as u64));
        for algo in Algorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), format!("n{n}_k{k}")),
                &init,
                |b, init| {
                    b.iter(|| {
                        let report = Deployment::of(black_box(init))
                            .algorithm(algo)
                            .schedule(Schedule::RoundRobin)
                            .expect("preset")
                            .run()
                            .expect("run");
                        assert!(report.succeeded());
                        // Theorem 1: at least kn/16 moves on this workload.
                        let moves = report.metrics.total_moves();
                        assert!(moves as f64 >= (n * k) as f64 / 16.0);
                        black_box(moves)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
