//! Criterion bench covering the **figure scenarios**: Fig. 5 (base-node
//! conditions), Fig. 7 (Theorem 5 construction), Fig. 9 (misestimation and
//! correction) and the rendezvous contrast, each as a timed end-to-end run.

use criterion::{criterion_group, criterion_main, Criterion};
use ringdeploy_analysis::{from_gaps, theorem5_config};
use ringdeploy_core::{Algorithm, Deployment, Rendezvous, Schedule, TerminatingEstimator};
use ringdeploy_sim::scheduler::RoundRobin;
use ringdeploy_sim::{InitialConfig, Ring, RunLimits};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let init = InitialConfig::new(18, vec![0, 1, 3, 6, 7, 9, 12, 13, 15]).expect("valid");
    c.bench_function("fig5_base_node_conditions", |b| {
        b.iter(|| {
            let r = Deployment::of(black_box(&init))
                .algorithm(Algorithm::LogSpace)
                .schedule(Schedule::RoundRobin)
                .expect("preset")
                .run()
                .expect("run");
            assert!(r.succeeded());
            black_box(r.metrics.total_moves())
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let init = theorem5_config(&[1, 3], 8);
    c.bench_function("fig7_theorem5_strawman", |b| {
        b.iter(|| {
            let mut ring = Ring::new(black_box(&init), |_| TerminatingEstimator::new());
            let out = ring
                .run(
                    &mut RoundRobin::new(),
                    RunLimits::for_instance(init.ring_size(), init.agent_count()),
                )
                .expect("run");
            assert!(out.quiescent);
            black_box(out.metrics.total_moves())
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    let init = from_gaps(&[11, 1, 3, 1, 3, 1, 3, 1, 3]).expect("valid gaps");
    c.bench_function("fig9_misestimate_correction", |b| {
        b.iter(|| {
            let r = Deployment::of(black_box(&init))
                .algorithm(Algorithm::Relaxed)
                .schedule(Schedule::RoundRobin)
                .expect("preset")
                .run()
                .expect("run");
            assert!(r.succeeded());
            black_box(r.metrics.total_moves())
        })
    });
}

fn bench_rendezvous_contrast(c: &mut Criterion) {
    let init = from_gaps(&[1, 2, 3, 1, 2, 3]).expect("valid gaps"); // periodic l = 2
    c.bench_function("rendezvous_on_periodic_ring", |b| {
        b.iter(|| {
            let k = init.agent_count();
            let mut ring = Ring::new(black_box(&init), |_| Rendezvous::new(k));
            let out = ring
                .run(
                    &mut RoundRobin::new(),
                    RunLimits::for_instance(init.ring_size(), k),
                )
                .expect("run");
            assert!(out.quiescent);
            black_box(out.metrics.total_moves())
        })
    });
}

criterion_group!(
    benches,
    bench_fig5,
    bench_fig7,
    bench_fig9,
    bench_rendezvous_contrast
);
criterion_main!(benches);
