//! **E-OPT — competitive ratio against the offline oracle.**
//!
//! Theorem 1 lower-bounds the *worst case*; this experiment compares each
//! algorithm's measured moves against the instance-wise offline optimum
//! ([`oracle_moves`]) — the cheapest any omniscient scheduler could do on
//! a unidirectional ring. The gap is the price of anonymity + locality +
//! token-only marking.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_analysis::{
    fmt_f64, measure_one, oracle_moves, quarter_ring_config, random_aperiodic_config, TextTable,
};
use ringdeploy_core::{Algorithm, Schedule};
use ringdeploy_sim::InitialConfig;

fn workloads() -> Vec<(&'static str, InitialConfig)> {
    let mut rng = SmallRng::seed_from_u64(606);
    vec![
        ("quarter-ring n=128 k=16", quarter_ring_config(128, 16)),
        ("quarter-ring n=512 k=64", quarter_ring_config(512, 64)),
        (
            "random n=128 k=16",
            random_aperiodic_config(&mut rng, 128, 16),
        ),
        (
            "random n=512 k=32",
            random_aperiodic_config(&mut rng, 512, 32),
        ),
        (
            "near-uniform n=128 k=16",
            InitialConfig::new(128, (0..16).map(|i| (i * 8 + (i % 2)) % 128).collect())
                .expect("valid"),
        ),
    ]
}

/// Runs the optimality experiment and returns the printed report.
pub fn optimality() -> String {
    let mut out = String::new();
    out.push_str("== Competitive ratio vs the offline oracle ==\n");
    out.push_str(
        "oracle = min total forward moves to any uniform placement (global knowledge)\n\n",
    );
    let mut table = TextTable::new(vec![
        "workload", "oracle", "algo1", "x-opt", "algo2", "x-opt", "relaxed", "x-opt",
    ]);
    for (name, init) in workloads() {
        let opt = oracle_moves(&init).total_moves;
        let mut row = vec![name.to_string(), opt.to_string()];
        for algo in Algorithm::ALL {
            let m = measure_one(&init, algo, Schedule::Random(2), None).expect("run");
            assert!(m.success);
            row.push(m.total_moves.to_string());
            row.push(if opt == 0 {
                "inf".into()
            } else {
                fmt_f64(m.total_moves as f64 / opt as f64)
            });
        }
        table.row(row);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nNo algorithm beats the oracle; on Theta(kn)-hard workloads (quarter\n\
         ring) the knowledge-of-k algorithms run within a small constant of\n\
         it. Near-uniform starts show the price of the mandatory survey\n\
         circuit: the oracle pays ~0 while every distributed algorithm still\n\
         walks Omega(n) per agent to *learn* the configuration (the relaxed\n\
         algorithm adaptively pays less as l grows - see table1).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_algorithm_beats_the_oracle() {
        for (name, init) in workloads() {
            let opt = oracle_moves(&init).total_moves;
            for algo in Algorithm::ALL {
                let m = measure_one(&init, algo, Schedule::Random(4), None).expect("run");
                assert!(
                    m.total_moves >= opt,
                    "{algo} on {name}: {} < oracle {opt}",
                    m.total_moves
                );
            }
        }
    }

    #[test]
    fn knowledge_algorithms_are_constant_competitive_on_hard_workloads() {
        let init = quarter_ring_config(256, 32);
        let opt = oracle_moves(&init).total_moves;
        for algo in [Algorithm::FullKnowledge, Algorithm::LogSpace] {
            let m = measure_one(&init, algo, Schedule::Random(4), None).expect("run");
            let ratio = m.total_moves as f64 / opt as f64;
            assert!(ratio < 8.0, "{algo} ratio {ratio}");
        }
    }

    #[test]
    fn report_renders() {
        let s = optimality();
        assert!(s.contains("oracle"));
        assert!(s.contains("x-opt"));
    }
}
