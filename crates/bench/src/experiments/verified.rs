//! **E-VERIFY — exhaustive schedule verification.**
//!
//! For small instances, enumerates *every* asynchronous schedule (not a
//! sample) with the bounded model checker and reports the state counts.
//! Success means: every maximal execution of the algorithm on that
//! instance ends uniformly deployed, and no schedule can loop forever —
//! machine-checked instances of Theorems 3, 4 and 6.

use ringdeploy_analysis::TextTable;
use ringdeploy_core::{FullKnowledge, LogSpace, NoKnowledge};
use ringdeploy_sim::explore::{explore_all_schedules, ExploreLimits};
use ringdeploy_sim::{
    satisfies_halting_deployment, satisfies_suspended_deployment, InitialConfig, Ring,
};

/// Runs the verification experiment and returns the printed report.
pub fn verified() -> String {
    let mut out = String::new();
    out.push_str("== Exhaustive verification: every schedule, small instances ==\n");
    out.push_str("(bounded model checking: safety + termination under arbitrary schedules)\n\n");
    let mut table = TextTable::new(vec![
        "algorithm",
        "n",
        "homes",
        "states",
        "terminals",
        "verdict",
    ]);
    let cases: Vec<(usize, Vec<usize>)> = vec![
        (6, vec![0, 1]),
        (6, vec![0, 1, 3]),
        (8, vec![0, 1, 2]),
        (10, vec![0, 5]),
    ];
    for (n, homes) in &cases {
        let k = homes.len();
        let init = InitialConfig::new(*n, homes.clone()).expect("valid");

        let ring = Ring::new(&init, |_| FullKnowledge::new(k));
        let r1 = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        });
        push_row(
            &mut table,
            "algo1",
            *n,
            homes,
            r1.map(|r| (r.states, r.terminals)),
        );

        let ring = Ring::new(&init, |_| LogSpace::new(k));
        let r2 = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        });
        push_row(
            &mut table,
            "algo2",
            *n,
            homes,
            r2.map(|r| (r.states, r.terminals)),
        );

        if *n <= 6 {
            // The relaxed algorithm's 14n-walks blow the state space up
            // faster; verify on the smallest instances.
            let ring = Ring::new(&init, |_| NoKnowledge::new());
            let r3 = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
                satisfies_suspended_deployment(r).is_satisfied()
            });
            push_row(
                &mut table,
                "relaxed",
                *n,
                homes,
                r3.map(|r| (r.states, r.terminals)),
            );
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nEvery reachable quiescent configuration is uniformly deployed and\n\
         the configuration graphs are acyclic (no livelocks) - correctness on\n\
         these instances holds for ALL schedules, not just the sampled ones.\n",
    );
    out
}

fn push_row<E: std::fmt::Display>(
    table: &mut TextTable,
    algo: &str,
    n: usize,
    homes: &[usize],
    result: Result<(usize, usize), E>,
) {
    match result {
        Ok((states, terminals)) => table.row(vec![
            algo.into(),
            n.to_string(),
            format!("{homes:?}"),
            states.to_string(),
            terminals.to_string(),
            "verified".into(),
        ]),
        Err(e) => table.row(vec![
            algo.into(),
            n.to_string(),
            format!("{homes:?}"),
            "-".into(),
            "-".into(),
            format!("FAILED: {e}"),
        ]),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_report_is_all_green() {
        let s = verified();
        assert!(s.contains("verified"));
        assert!(!s.contains("FAILED"), "{s}");
    }
}
