//! **E-TOKENS — tokens are necessary (§2.1).**
//!
//! Runs the adaptive tokenless probe in lock-step executions and shows the
//! configuration's gap multiset is invariant — no tokenless algorithm can
//! reach uniform deployment from a non-uniform start — while Algorithm 1,
//! with tokens, solves the same instances.

use ringdeploy_analysis::TextTable;
use ringdeploy_core::{FullKnowledge, TokenlessProbe};
use ringdeploy_sim::{
    is_uniform_spacing, satisfies_halting_deployment, uniform_gaps, InitialConfig, Ring, RunLimits,
};

fn gap_multiset(n: usize, positions: &[usize]) -> Vec<u64> {
    let mut g = uniform_gaps(n, positions);
    g.sort_unstable();
    g
}

/// Runs the token-necessity demonstration and returns the printed report.
pub fn tokens_necessity() -> String {
    let mut out = String::new();
    out.push_str("== Necessity of tokens (paper section 2.1) ==\n");
    out.push_str("tokenless probe, lock-step execution: gap multiset must be invariant\n\n");
    let mut table = TextTable::new(vec![
        "n",
        "k",
        "initial gaps",
        "tokenless final gaps",
        "uniform?",
        "algo1 (tokens)",
    ]);
    let cases: Vec<(usize, Vec<usize>)> = vec![
        (20, vec![0, 1, 5, 12]),
        (30, vec![0, 1, 2, 3, 4]),
        (24, vec![0, 3, 4, 11]),
    ];
    for (n, homes) in cases {
        let k = homes.len();
        let before = gap_multiset(n, &homes);
        let init = InitialConfig::new(n, homes).expect("valid");

        let mut ring = Ring::new(&init, |_| TokenlessProbe::new(3 * n as u64));
        ring.run_synchronous(RunLimits::for_instance(n, k))
            .expect("run");
        let pos = ring.staying_positions().expect("halted");
        let after = gap_multiset(n, &pos);
        let uniform = is_uniform_spacing(n, &pos);

        let mut with_tokens = Ring::new(&init, |_| FullKnowledge::new(k));
        with_tokens
            .run_synchronous(RunLimits::for_instance(n, k))
            .expect("run");
        let solved = satisfies_halting_deployment(&with_tokens).is_satisfied();

        assert_eq!(before, after, "gap multiset changed — invariance violated");
        table.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{before:?}"),
            format!("{after:?}"),
            if uniform {
                "yes (!)".into()
            } else {
                "no".into()
            },
            if solved {
                "deploys".into()
            } else {
                "FAILS".into()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nIn lock-step, anonymous tokenless agents make identical decisions\n\
         forever, so the gap multiset is invariant and a non-uniform start\n\
         can never become uniform. One droppable token per agent is exactly\n\
         what breaks this: it lets agents measure the configuration.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shows_invariance_and_contrast() {
        let s = tokens_necessity();
        assert!(s.contains("deploys"));
        assert!(!s.contains("FAILS"));
        assert!(!s.contains("yes (!)"));
    }
}
