//! Experiment implementations, one per paper table/figure group.

mod ablation;
mod figures;
mod impossibility;
mod lower_bound;
mod optimality;
mod rendezvous;
mod table1;
mod tokens;
mod tree_ext;
mod verified;

pub use ablation::scheduler_ablation;
pub use figures::figures;
pub use impossibility::impossibility;
pub use lower_bound::lower_bound;
pub use optimality::optimality;
pub use rendezvous::rendezvous_contrast;
pub use table1::table1;
pub use tokens::tokens_necessity;
pub use tree_ext::tree_extension;
pub use verified::verified;
