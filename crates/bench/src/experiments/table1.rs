//! **E-T1-R1/R2/R4 — Table 1 reproduction.**
//!
//! Measures, for each algorithm and a sweep of `(n, k)` (and symmetry
//! degree `l` for the relaxed algorithm), the paper's three complexity
//! measures and reports the ratio `measured / bound`. A complexity claim
//! "holds" when the ratio stays bounded (roughly constant) across the
//! sweep — that is the *shape* reproduction the experiment targets.
//!
//! The grid is executed through the parallel [`Sweep`] batch API; because
//! sweep rows stream in deterministic cell order and every cell's seed is
//! fixed (`1000 + cell_index`, as in the original sequential harness),
//! the reproduced numbers are identical run to run and thread-count to
//! thread-count.

use ringdeploy_analysis::{
    algo1_bounds, algo2_bounds, fmt_f64, relaxed_bounds, Measurement, Sweep, TextTable, Workload,
};
use ringdeploy_core::Algorithm;

/// The `(n, k)` grid used for the knowledge-of-`k` algorithms.
pub fn nk_grid() -> Vec<(usize, usize)> {
    vec![
        (64, 4),
        (64, 8),
        (128, 8),
        (128, 16),
        (256, 8),
        (256, 16),
        (256, 32),
        (512, 16),
        (512, 32),
        (1024, 32),
    ]
}

/// The `(n, k, l)` grid used for the relaxed algorithm (fixed `n`, `k`;
/// varying symmetry degree).
pub fn symmetry_grid() -> Vec<(usize, usize, usize)> {
    vec![
        (512, 32, 1),
        (512, 32, 2),
        (512, 32, 4),
        (512, 32, 8),
        (512, 32, 16),
        (512, 32, 32),
    ]
}

/// The `(n, k, l)` cells measured for `algorithm`, in row order.
pub fn cells_for(algorithm: Algorithm) -> Vec<(usize, usize, usize)> {
    if algorithm == Algorithm::Relaxed {
        symmetry_grid()
    } else {
        nk_grid().into_iter().map(|(n, k)| (n, k, 1)).collect()
    }
}

/// The workload family of one grid cell: aperiodic random placements for
/// `l = 1`, the prescribed-symmetry construction otherwise.
pub fn workload_for(n: usize, k: usize, l: usize) -> Workload {
    if l == 1 {
        Workload::RandomAperiodic { n, k }
    } else {
        Workload::Periodic { n, k, l }
    }
}

/// The sweep measuring `algorithm`'s grid: one seeded workload per cell
/// (seed `1000 + i`), each run under `Random(seed)` for adversarial
/// validation plus a synchronous run for ideal time.
pub fn table1_sweep(algorithm: Algorithm) -> Sweep {
    let mut sweep = Sweep::new()
        .algorithm(algorithm)
        .random_per_seed()
        .with_ideal_time();
    for (i, (n, k, l)) in cells_for(algorithm).into_iter().enumerate() {
        sweep = sweep.seeded_workload(workload_for(n, k, l), 1000 + i as u64);
    }
    sweep
}

fn bound_values(algorithm: Algorithm, n: usize, k: usize, l: usize) -> [f64; 3] {
    let b = if algorithm == Algorithm::FullKnowledge {
        algo1_bounds(n, k)
    } else if algorithm == Algorithm::LogSpace {
        algo2_bounds(n, k)
    } else {
        relaxed_bounds(n, k, l)
    };
    [b[0].value, b[1].value, b[2].value]
}

/// Renders the Table-1 reproduction for one algorithm. Returns the table
/// and the worst `measured/bound` ratios `(memory, time, moves)` seen.
pub fn table1_for(algorithm: Algorithm) -> (TextTable, [f64; 3]) {
    let mut table = TextTable::new(vec![
        "n",
        "k",
        "l",
        "mem[bits]",
        "mem/bound",
        "time[rounds]",
        "time/bound",
        "moves",
        "moves/bound",
        "ok",
    ]);
    let mut worst = [0.0f64; 3];
    let measurements: Vec<Measurement> = table1_sweep(algorithm)
        .run()
        .expect("paper algorithms terminate within limits")
        .into_iter()
        .map(|row| row.measurement)
        .collect();
    for ((n, k, l), m) in cells_for(algorithm).into_iter().zip(measurements) {
        let bounds = bound_values(algorithm, n, k, l);
        let mem = m.peak_memory_bits as f64;
        let time = m.ideal_time.expect("synchronous run") as f64;
        let moves = m.total_moves as f64;
        let ratios = [mem / bounds[0], time / bounds[1], moves / bounds[2]];
        for (w, r) in worst.iter_mut().zip(ratios) {
            *w = w.max(r);
        }
        table.row(vec![
            n.to_string(),
            k.to_string(),
            l.to_string(),
            m.peak_memory_bits.to_string(),
            fmt_f64(ratios[0]),
            (time as u64).to_string(),
            fmt_f64(ratios[1]),
            m.total_moves.to_string(),
            fmt_f64(ratios[2]),
            if m.success { "yes".into() } else { "NO".into() },
        ]);
    }
    (table, worst)
}

/// Runs the full Table 1 reproduction and returns the printed report.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("== Table 1: results in each model (measured) ==\n\n");
    for algo in Algorithm::ALL {
        let (table, worst) = table1_for(algo);
        let paper = if algo == Algorithm::FullKnowledge {
            "paper: memory O(k log n), time O(n), moves O(kn)"
        } else if algo == Algorithm::LogSpace {
            "paper: memory O(log n), time O(n log k), moves O(kn)"
        } else {
            "paper: memory O((k/l) log(n/l)), time O(n/l), moves O(kn/l)"
        };
        out.push_str(&format!("-- {algo} --\n{paper}\n"));
        out.push_str(&table.render());
        out.push_str(&format!(
            "worst measured/bound ratios: memory {:.2}, time {:.2}, moves {:.2}\n",
            worst[0], worst[1], worst[2]
        ));
        out.push_str("(bounded ratios across the sweep confirm the asymptotic shape)\n\n");
    }
    out.push_str(
        "-- Result 3 (no knowledge + termination detection) is impossible: \
         see the `impossibility` experiment. --\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringdeploy_analysis::measure_with_ideal_time;
    use ringdeploy_core::Schedule;

    #[test]
    fn ratios_stay_bounded_for_algo1() {
        let (_t, worst) = table1_for(Algorithm::FullKnowledge);
        // Constants in front of the O(·): memory ≈ 1–2, time ≤ 3, moves ≤ 3.
        assert!(worst[0] < 4.0, "memory ratio {}", worst[0]);
        assert!(worst[1] < 4.0, "time ratio {}", worst[1]);
        assert!(worst[2] < 4.0, "moves ratio {}", worst[2]);
    }

    #[test]
    fn ratios_stay_bounded_for_relaxed() {
        let (_t, worst) = table1_for(Algorithm::Relaxed);
        // Per-agent moves are ≤ 14·n/l (Lemma 5), so total moves stay below
        // 15·kn/l. Ideal time can exceed 14·n/l when correction chains are
        // involved (a late-corrected agent still has to walk to 12·n total),
        // but remains a bounded constant times n/l.
        assert!(worst[1] < 30.0, "time ratio {}", worst[1]);
        assert!(worst[2] < 15.0, "moves ratio {}", worst[2]);
    }

    #[test]
    fn parallel_sweep_reproduces_the_sequential_loop_exactly() {
        // The acceptance bar for the Sweep migration: for a fixed per-cell
        // seed, the parallel batch rows carry *identical numbers* to the
        // old sequential measure-with-time loop.
        let algorithm = Algorithm::LogSpace;
        let rows = table1_sweep(algorithm).threads(4).run().expect("sweep");
        let cells = cells_for(algorithm);
        assert_eq!(rows.len(), cells.len());
        for (i, ((n, k, l), row)) in cells.into_iter().zip(&rows).enumerate() {
            let seed = 1000 + i as u64;
            let init = workload_for(n, k, l).instantiate(seed);
            let reference = measure_with_ideal_time(&init, algorithm, Schedule::Random(seed), None)
                .expect("reference run");
            assert_eq!(row.measurement, reference, "cell {i} diverged");
        }
    }

    #[test]
    fn report_renders() {
        let s = table1();
        assert!(s.contains("Table 1"));
        assert!(s.contains("algo1-full-knowledge"));
        assert!(s.contains("algo4-relaxed"));
    }
}
