//! **E-THM1 / E-THM2 / E-FIG3 — the Ω(kn) moves and Ω(n) time lower
//! bounds** on the quarter-ring workload of Fig. 3.
//!
//! Theorem 1: from the configuration with all agents in one quarter of the
//! ring, any algorithm needs at least `kn/16` total moves. We measure the
//! moves of all three algorithms on exactly that workload and report the
//! ratio to the lower bound (must be ≥ 1; being within a small constant of
//! it shows asymptotic optimality, Theorems 3/4).

use ringdeploy_analysis::{
    fmt_f64, measure_with_ideal_time, quarter_ring_config, theorem1_lower_bound, TextTable,
};
use ringdeploy_core::{Algorithm, Schedule};

/// The `(n, k)` grid (respecting the theorem's `k ≤ n/4` premise).
pub fn grid() -> Vec<(usize, usize)> {
    vec![(64, 8), (128, 16), (256, 32), (512, 64), (1024, 64)]
}

/// Runs the lower-bound experiment and returns the printed report.
pub fn lower_bound() -> String {
    let mut out = String::new();
    out.push_str("== Theorem 1 / Theorem 2: lower bounds on the Fig. 3 workload ==\n");
    out.push_str("lower bounds: total moves ≥ kn/16, ideal time ≥ n/4 (quarter-ring)\n\n");
    let mut table = TextTable::new(vec![
        "algorithm",
        "n",
        "k",
        "moves",
        "kn/16",
        "moves/LB",
        "time",
        "n/4",
        "time/LB",
        "ok",
    ]);
    let mut min_move_ratio = f64::INFINITY;
    let mut min_time_ratio = f64::INFINITY;
    for (n, k) in grid() {
        let init = quarter_ring_config(n, k);
        for algo in Algorithm::ALL {
            let m = measure_with_ideal_time(&init, algo, Schedule::Random(7), None)
                .expect("run completes");
            let lb_moves = theorem1_lower_bound(n, k);
            let lb_time = n as f64 / 4.0;
            let time = m.ideal_time.expect("synchronous run") as f64;
            let move_ratio = m.total_moves as f64 / lb_moves;
            let time_ratio = time / lb_time;
            min_move_ratio = min_move_ratio.min(move_ratio);
            min_time_ratio = min_time_ratio.min(time_ratio);
            table.row(vec![
                algo.name().into(),
                n.to_string(),
                k.to_string(),
                m.total_moves.to_string(),
                fmt_f64(lb_moves),
                fmt_f64(move_ratio),
                (time as u64).to_string(),
                fmt_f64(lb_time),
                fmt_f64(time_ratio),
                if m.success { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nminimum measured/lower-bound ratio: moves {:.2}, time {:.2} (both must be ≥ 1)\n",
        min_move_ratio, min_time_ratio
    ));
    out.push_str(
        "The knowledge-of-k algorithms stay within a constant factor of the\n\
         move lower bound — matching their Θ(kn) optimality (Theorems 3, 4).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_moves_respect_lower_bound() {
        let (n, k) = (128, 16);
        let init = quarter_ring_config(n, k);
        for algo in Algorithm::ALL {
            let m = measure_with_ideal_time(&init, algo, Schedule::Random(3), None).unwrap();
            assert!(m.success, "{algo} failed");
            assert!(
                m.total_moves as f64 >= theorem1_lower_bound(n, k),
                "{algo}: {} < kn/16",
                m.total_moves
            );
            assert!(m.ideal_time.unwrap() as f64 >= n as f64 / 4.0);
        }
    }

    #[test]
    fn report_renders() {
        let s = lower_bound();
        assert!(s.contains("Theorem 1"));
        assert!(s.contains("moves/LB"));
    }
}
