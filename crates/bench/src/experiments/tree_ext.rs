//! **E-EXT-TREE — the §5 extension: deployment on trees and graphs via
//! ring embedding.**
//!
//! The paper's conclusion sketches the Euler-tour embedding; this
//! experiment measures it: tree/graph topology → virtual ring of `2(n−1)`
//! nodes → uniform deployment → patrol-latency improvement on the original
//! topology, with every virtual hop costing exactly one real edge
//! traversal.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_analysis::{fmt_f64, TextTable};
use ringdeploy_core::{Algorithm, Schedule};
use ringdeploy_embed::{deploy_on_tree, patrol_latency, EulerTour, Graph, Tree};

fn tree_cases() -> Vec<(&'static str, Tree, Vec<usize>)> {
    let mut rng = SmallRng::seed_from_u64(55);
    vec![
        ("path n=32", Tree::path(32), vec![0, 1, 2, 3]),
        ("star n=33", Tree::star(33), vec![1, 2, 3, 4]),
        ("binary n=31", Tree::binary(31), vec![0, 1, 2, 3]),
        (
            "random n=48",
            Tree::random(&mut rng, 48),
            vec![0, 1, 2, 3, 4, 5],
        ),
        (
            "grid 6x6 (spanning tree)",
            Graph::grid(6, 6).spanning_tree(0),
            vec![0, 1, 6, 7],
        ),
    ]
}

/// Runs the tree-extension experiment and returns the printed report.
pub fn tree_extension() -> String {
    let mut out = String::new();
    out.push_str(
        "== Extension (paper section 5): deployment on trees via Euler-tour embedding ==\n\n",
    );
    let mut table = TextTable::new(vec![
        "topology",
        "virtual-n",
        "k",
        "latency-before",
        "latency-after",
        "improvement",
        "moves",
        "uniform",
    ]);
    for (name, tree, agents) in tree_cases() {
        let tour = EulerTour::new(&tree, agents[0]);
        let homes: Vec<usize> = agents.iter().map(|&v| tour.first_position(v)).collect();
        let before = patrol_latency(&tour, &homes);
        let report =
            deploy_on_tree(&tree, &agents, Algorithm::LogSpace, Schedule::Random(5)).expect("run");
        table.row(vec![
            name.into(),
            report.ring_report.n.to_string(),
            agents.len().to_string(),
            before.to_string(),
            report.patrol_latency.to_string(),
            format!(
                "{}x",
                fmt_f64(before as f64 / report.patrol_latency.max(1) as f64)
            ),
            report.ring_report.metrics.total_moves().to_string(),
            if report.ring_report.succeeded() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nVirtual ring size is 2(n-1); every virtual hop is one real tree-edge\n\
         traversal, so the O(kn) move bounds carry over with n doubled - the\n\
         asymptotic equivalence claimed in the paper's conclusion.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_deploy_and_improve() {
        for (name, tree, agents) in tree_cases() {
            let tour = EulerTour::new(&tree, agents[0]);
            let homes: Vec<usize> = agents.iter().map(|&v| tour.first_position(v)).collect();
            let before = patrol_latency(&tour, &homes);
            let report = deploy_on_tree(&tree, &agents, Algorithm::LogSpace, Schedule::Random(5))
                .expect("run");
            assert!(report.ring_report.succeeded(), "{name}");
            assert!(
                report.patrol_latency <= before,
                "{name}: latency {} vs {}",
                report.patrol_latency,
                before
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = tree_extension();
        assert!(s.contains("Euler-tour"));
        assert!(!s.contains("NO"));
    }
}
