//! **E-T1-R3 / E-FIG7 — Theorem 5 demonstration.**
//!
//! No algorithm solves uniform deployment *with termination detection*
//! when agents know neither `k` nor `n`. The proof replicates a ring `R`
//! into a larger `R'` (Fig. 7) so that agents behave identically and halt
//! prematurely. We run the natural "estimate then halt" strawman on both
//! rings:
//!
//! * on `R` (aperiodic) it happens to succeed — the trap;
//! * on `R'` it halts with spacing `d` where `2d` is required — failure;
//! * the relaxed algorithm (which only suspends) succeeds on **both**.

use ringdeploy_analysis::{from_gaps, theorem5_config, TextTable};
use ringdeploy_core::{Algorithm, Deployment, TerminatingEstimator};
use ringdeploy_sim::scheduler::RoundRobin;
use ringdeploy_sim::{satisfies_halting_deployment, InitialConfig, Ring, RunLimits};

/// Runs the strawman on `init`; returns (quiescent, Definition-1 verdict).
fn run_strawman(init: &InitialConfig) -> (bool, bool) {
    let mut ring = Ring::new(init, |_| TerminatingEstimator::new());
    let out = ring
        .run(
            &mut RoundRobin::new(),
            RunLimits::for_instance(init.ring_size(), init.agent_count()),
        )
        .expect("strawman terminates");
    (
        out.quiescent,
        satisfies_halting_deployment(&ring).is_satisfied(),
    )
}

/// Runs the impossibility demonstration and returns the printed report.
pub fn impossibility() -> String {
    let mut out = String::new();
    out.push_str("== Theorem 5: impossibility with termination detection, no knowledge ==\n");
    out.push_str("strawman = estimate by 4-fold repetition, deploy, HALT (no patrolling)\n\n");

    let base_gaps = [1usize, 3]; // ring R: n = 4, k = 2, d = 2
    let mut table = TextTable::new(vec![
        "ring",
        "n",
        "k",
        "required-gap",
        "strawman",
        "relaxed",
    ]);

    // Ring R itself.
    let r = from_gaps(&base_gaps).expect("valid gaps");
    let (_q, ok_r) = run_strawman(&r);
    let relaxed_r = Deployment::of(&r)
        .algorithm(Algorithm::Relaxed)
        .run()
        .expect("relaxed run")
        .succeeded();
    table.row(vec![
        "R".into(),
        r.ring_size().to_string(),
        r.agent_count().to_string(),
        (r.ring_size() / r.agent_count()).to_string(),
        if ok_r {
            "deploys".into()
        } else {
            "FAILS".into()
        },
        if relaxed_r {
            "deploys".into()
        } else {
            "FAILS".into()
        },
    ]);

    // R' for growing q: the strawman must fail on all of them.
    let mut all_fail = true;
    for q in [4usize, 8, 16] {
        let rp = theorem5_config(&base_gaps, q);
        let (_q2, ok_rp) = run_strawman(&rp);
        all_fail &= !ok_rp;
        let relaxed_rp = Deployment::of(&rp)
            .algorithm(Algorithm::Relaxed)
            .run()
            .expect("relaxed run")
            .succeeded();
        table.row(vec![
            format!("R' (q={q})"),
            rp.ring_size().to_string(),
            rp.agent_count().to_string(),
            (rp.ring_size() / rp.agent_count()).to_string(),
            if ok_rp {
                "deploys".into()
            } else {
                "FAILS".into()
            },
            if relaxed_rp {
                "deploys".into()
            } else {
                "FAILS".into()
            },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nstrawman fails on every R' construction: {}\n",
        if all_fail {
            "confirmed"
        } else {
            "NOT CONFIRMED"
        }
    ));
    out.push_str(
        "Agents inside the replicated half of R' observe the same local\n\
         configurations as in R (Lemma 1), halt at interval d — but R' needs 2d.\n\
         The relaxed algorithm (Result 4) only suspends, gets corrected by the\n\
         agent that estimated the true size, and succeeds on both rings.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringdeploy_core::Schedule;

    #[test]
    fn strawman_fails_on_all_constructions() {
        for q in [4usize, 8] {
            let rp = theorem5_config(&[1, 3], q);
            let (quiescent, ok) = run_strawman(&rp);
            assert!(quiescent);
            assert!(!ok, "strawman must fail for q={q}");
            // The relaxed algorithm succeeds on the same ring.
            let relaxed = Deployment::of(&rp)
                .algorithm(Algorithm::Relaxed)
                .schedule(Schedule::Random(1))
                .unwrap()
                .run()
                .unwrap();
            assert!(relaxed.succeeded(), "relaxed must succeed for q={q}");
        }
    }

    #[test]
    fn report_renders() {
        let s = impossibility();
        assert!(s.contains("Theorem 5"));
        assert!(s.contains("confirmed"));
    }
}
