//! **E-ABL-SCHED — scheduler-adversary ablation.**
//!
//! The paper's algorithms must work under *any* fair asynchronous
//! schedule. We sweep all three algorithms across scheduler adversaries
//! and record success and total moves — moves may vary slightly with the
//! interleaving (e.g. which follower claims which target) but correctness
//! must not.

use ringdeploy_analysis::{Sweep, TextTable, Workload};
use ringdeploy_core::{Algorithm, Schedule};

/// The schedules exercised by the ablation.
pub fn schedules() -> Vec<Schedule> {
    vec![
        Schedule::RoundRobin,
        Schedule::Random(1),
        Schedule::Random(2),
        Schedule::OneAtATime,
        Schedule::DelayAgent(0),
        Schedule::Synchronous,
    ]
}

/// Runs the ablation and returns the printed report.
pub fn scheduler_ablation() -> String {
    let mut out = String::new();
    out.push_str("== Scheduler ablation: correctness under every fair adversary ==\n\n");
    let mut table = TextTable::new(vec!["algorithm", "schedule", "total-moves", "ok"]);
    // One fixed aperiodic instance (workload seed 4242) across all cells.
    let rows = Sweep::new()
        .algorithms(Algorithm::ALL)
        .seeded_workload(Workload::RandomAperiodic { n: 96, k: 8 }, 4242)
        .schedules(schedules())
        .run()
        .expect("all runs complete");
    let mut all_ok = true;
    for row in &rows {
        let m = &row.measurement;
        all_ok &= m.success;
        table.row(vec![
            m.algorithm.name().into(),
            row.cell.schedule.label(),
            m.total_moves.to_string(),
            if m.success { "yes".into() } else { "NO".into() },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nall algorithm × schedule combinations correct: {}\n",
        if all_ok { "confirmed" } else { "VIOLATION" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_is_all_green() {
        let report = scheduler_ablation();
        assert!(report.contains("confirmed"), "{report}");
        assert!(!report.contains("NO"), "{report}");
    }

    #[test]
    fn ablation_covers_the_full_matrix() {
        let report = scheduler_ablation();
        for schedule in schedules() {
            assert!(report.contains(&schedule.label()), "{schedule} missing");
        }
    }
}
