//! **E-ABL-SCHED — scheduler-adversary ablation.**
//!
//! The paper's algorithms must work under *any* fair asynchronous
//! schedule. We sweep all three algorithms across scheduler adversaries
//! and record success and total moves — moves may vary slightly with the
//! interleaving (e.g. which follower claims which target) but correctness
//! must not.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_analysis::{measure, random_aperiodic_config, TextTable};
use ringdeploy_core::{Algorithm, Schedule};

/// The schedules exercised by the ablation.
pub fn schedules() -> Vec<(&'static str, Schedule)> {
    vec![
        ("round-robin", Schedule::RoundRobin),
        ("random(1)", Schedule::Random(1)),
        ("random(2)", Schedule::Random(2)),
        ("one-at-a-time", Schedule::OneAtATime),
        ("delay-agent-0", Schedule::DelayAgent(0)),
        ("synchronous", Schedule::Synchronous),
    ]
}

/// Runs the ablation and returns the printed report.
pub fn scheduler_ablation() -> String {
    let mut out = String::new();
    out.push_str("== Scheduler ablation: correctness under every fair adversary ==\n\n");
    let mut table = TextTable::new(vec!["algorithm", "schedule", "total-moves", "ok"]);
    let mut rng = SmallRng::seed_from_u64(4242);
    let init = random_aperiodic_config(&mut rng, 96, 8);
    let mut all_ok = true;
    for algo in Algorithm::ALL {
        for (name, schedule) in schedules() {
            let m = measure(&init, algo, schedule).expect("run completes");
            all_ok &= m.success;
            table.row(vec![
                algo.name().into(),
                name.into(),
                m.total_moves.to_string(),
                if m.success { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nall algorithm × schedule combinations correct: {}\n",
        if all_ok { "confirmed" } else { "VIOLATION" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_is_all_green() {
        let report = scheduler_ablation();
        assert!(report.contains("confirmed"), "{report}");
        assert!(!report.contains("NO"), "{report}");
    }
}
