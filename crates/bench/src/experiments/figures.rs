//! **E-FIG1…E-FIG11 — figure-by-figure scenario reproductions.**
//!
//! Each of the paper's illustrative figures is re-created as a concrete
//! run or computation, and the property the figure illustrates is checked
//! and printed.

use ringdeploy_analysis::from_gaps;
use ringdeploy_core::{Algorithm, Deployment, FullKnowledge, LogSpace, NoKnowledge, Role};
use ringdeploy_seq::{starts_with_fourfold_repetition, symmetry_degree, DistanceSeq};
use ringdeploy_sim::scheduler::RoundRobin;
use ringdeploy_sim::{
    is_uniform_spacing, satisfies_halting_deployment, satisfies_suspended_deployment, AgentId,
    InitialConfig, Ring, RunLimits,
};

fn fig1() -> String {
    // Symmetry degree examples.
    let a = DistanceSeq::new(vec![1, 4, 2, 1, 2, 2]).expect("valid");
    let b = DistanceSeq::new(vec![1, 2, 3, 1, 2, 3]).expect("valid");
    format!(
        "Fig 1  symmetry degree: D={} -> l={} (aperiodic);  D={} -> l={}\n",
        a,
        a.symmetry_degree(),
        b,
        b.symmetry_degree()
    )
}

fn fig2() -> String {
    // Uniform deployment target, n = 16, k = 4 (the caption's d=3 is a
    // typo: ⌊16/4⌋ = 4).
    let positions = [0usize, 4, 8, 12];
    format!(
        "Fig 2  uniform deployment n=16, k=4: positions {:?} uniform = {} (gap n/k = 4; paper caption says d=3 — noted as a typo)\n",
        positions,
        is_uniform_spacing(16, &positions)
    )
}

fn fig4() -> String {
    // Base and target nodes for Algorithm 1 on a periodic k = 6 example.
    let init = InitialConfig::new(12, vec![0, 1, 3, 6, 7, 9]).expect("valid");
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(6));
    ring.run(&mut RoundRobin::new(), RunLimits::for_instance(12, 6))
        .expect("run");
    let ranks: Vec<usize> = (0..6)
        .map(|i| ring.behavior(AgentId(i)).learned().expect("learned").rank)
        .collect();
    let bases: Vec<u64> = (0..6)
        .map(|i| {
            ring.behavior(AgentId(i))
                .learned()
                .expect("learned")
                .base_count
        })
        .collect();
    let ok = satisfies_halting_deployment(&ring).is_satisfied();
    format!(
        "Fig 4  Algorithm 1 base/target selection (n=12, D=(1,2,3)^2): ranks {:?}, base-count {:?}, deployed uniformly = {ok}\n",
        ranks, bases
    )
}

fn fig5() -> String {
    // Base node conditions, n = 18, k = 9, d = 2.
    let init = InitialConfig::new(18, vec![0, 1, 3, 6, 7, 9, 12, 13, 15]).expect("valid");
    let mut ring = Ring::new(&init, |_| LogSpace::new(9));
    ring.run(&mut RoundRobin::new(), RunLimits::for_instance(18, 9))
        .expect("run");
    let leaders: Vec<usize> = (0..9)
        .filter(|&i| ring.behavior(AgentId(i)).role() == Role::Leader)
        .map(|i| init.homes()[i])
        .collect();
    let ok = satisfies_halting_deployment(&ring).is_satisfied();
    format!(
        "Fig 5  base-node conditions (n=18, k=9): base nodes at {:?} (distance 6, 2 homes between), deployed uniformly = {ok}\n",
        leaders
    )
}

fn fig6() -> String {
    // An active agent's ID: 5 hops, 2 follower nodes → ID (5, 2). We build
    // a ring where the final sub-phase produces exactly that ID.
    // n = 15, 3 active homes at distance 5, two followers between each.
    let init = InitialConfig::new(15, vec![0, 1, 2, 5, 6, 7, 10, 11, 12]).expect("valid");
    let mut ring = Ring::new(&init, |_| LogSpace::new(9));
    ring.run(&mut RoundRobin::new(), RunLimits::for_instance(15, 9))
        .expect("run");
    let ids: Vec<(u64, u64)> = (0..9)
        .filter(|&i| ring.behavior(AgentId(i)).role() == Role::Leader)
        .map(|i| ring.behavior(AgentId(i)).final_id().expect("final id"))
        .collect();
    format!(
        "Fig 6  active-agent IDs in the deciding sub-phase: {:?} (each = (d, fNum) = (5, 2))\n",
        ids
    )
}

fn fig8() -> String {
    // Estimation by repeated distance observation: walk (1,3,1,3,…) stops
    // after 8 entries, estimating 2 tokens / 4 nodes.
    let walk = [1u64, 3, 1, 3, 1, 3, 1, 3, 9, 9];
    let stop = starts_with_fourfold_repetition(&walk).expect("repetition");
    let k_est = stop / 4;
    let n_est: u64 = walk[..k_est].iter().sum();
    format!(
        "Fig 8  estimating phase on walk (1,3)^4…: stops after {stop} distances, estimates k'={k_est}, n'={n_est}\n"
    )
}

fn fig9() -> String {
    // Aperiodic ring with a periodic subsequence: n = 27,
    // D = (11,1,3,1,3,1,3,1,3). Some agent misestimates n' = 4 and is
    // corrected during patrolling.
    let init = from_gaps(&[11, 1, 3, 1, 3, 1, 3, 1, 3]).expect("valid gaps");
    let mut ring = Ring::new(&init, |_| NoKnowledge::new());
    ring.run(&mut RoundRobin::new(), RunLimits::for_instance(27, 9))
        .expect("run");
    let corrections: u32 = (0..9)
        .map(|i| ring.behavior(AgentId(i)).corrections())
        .sum();
    let estimates: Vec<(u64, u64)> = (0..9)
        .map(|i| ring.behavior(AgentId(i)).estimate().expect("estimated"))
        .collect();
    let all_correct = estimates.iter().all(|&e| e == (27, 9));
    let ok = satisfies_suspended_deployment(&ring).is_satisfied();
    format!(
        "Fig 9  misestimation & correction (n=27, k=9): {corrections} corrections delivered, all estimates now (27,9) = {all_correct}, deployed uniformly = {ok}\n"
    )
}

fn fig10() -> String {
    // The overlap argument of Lemma 4: an aperiodic sequence cannot equal a
    // non-trivial rotation of itself. Exhaustive check on small sequences.
    let mut checked = 0u64;
    for len in 2..=8usize {
        let mut idx = vec![0u8; len];
        loop {
            let seq: Vec<u8> = idx.clone();
            if symmetry_degree(&seq) == 1 {
                for t in 1..len {
                    let rotated: Vec<u8> = (0..len).map(|i| seq[(i + t) % len]).collect();
                    assert_ne!(rotated, seq, "aperiodic {seq:?} fixed by shift {t}");
                }
                checked += 1;
            }
            let mut i = 0;
            loop {
                if i == len {
                    break;
                }
                idx[i] += 1;
                if idx[i] < 3 {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
            if i == len {
                break;
            }
        }
    }
    format!(
        "Fig 10 overlap lemma: {checked} aperiodic sequences (len ≤ 8, alphabet 3) verified fixed by no non-trivial shift\n"
    )
}

fn fig11() -> String {
    // (6,2)-node periodic ring: every agent estimates N = 6, still uniform.
    let init = from_gaps(&[1, 2, 3, 1, 2, 3]).expect("valid gaps");
    let report = Deployment::of(&init)
        .algorithm(Algorithm::Relaxed)
        .run()
        .expect("run");
    format!(
        "Fig 11 (6,2)-node periodic ring (n=12): relaxed algorithm deploys uniformly = {} with every agent estimating the fundamental ring N=6\n",
        report.succeeded()
    )
}

/// Runs every figure reproduction and returns the printed report.
pub fn figures() -> String {
    let mut out = String::new();
    out.push_str("== Figure reproductions ==\n\n");
    out.push_str(&fig1());
    out.push_str(&fig2());
    out.push_str("Fig 3  lower-bound configuration: see the `lower-bound` experiment\n");
    out.push_str(&fig4());
    out.push_str(&fig5());
    out.push_str(&fig6());
    out.push_str("Fig 7  R vs R' construction: see the `impossibility` experiment\n");
    out.push_str(&fig8());
    out.push_str(&fig9());
    out.push_str(&fig10());
    out.push_str(&fig11());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_check_passes() {
        let report = figures();
        assert!(report.contains("l=1"));
        assert!(report.contains("l=2"));
        assert!(report.contains("uniform = true"));
        assert!(report.contains("deployed uniformly = true"));
        assert!(report.contains("estimates k'=2, n'=4"));
        assert!(!report.contains("= false"), "{report}");
        assert!(!report.contains("NO"), "{report}");
    }

    #[test]
    fn fig6_ids_are_five_two() {
        let s = fig6();
        assert!(s.contains("(5, 2)"), "{s}");
    }

    #[test]
    fn fig9_reports_corrections() {
        let s = fig9();
        assert!(s.contains("deployed uniformly = true"), "{s}");
        assert!(!s.contains("0 corrections"), "{s}");
    }
}
