//! **E-RDV — the rendezvous contrast (§1.3).**
//!
//! Rendezvous (symmetry breaking) is unsolvable from periodic initial
//! configurations; uniform deployment (symmetry attainment) is solvable
//! from *all* of them. We run both on the same workloads.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy_analysis::{periodic_config, random_aperiodic_config, TextTable};
use ringdeploy_core::{Algorithm, Deployment, Rendezvous, RendezvousVerdict, Schedule};
use ringdeploy_sim::scheduler::Random;
use ringdeploy_sim::{InitialConfig, Ring, RunLimits};

/// Runs the rendezvous baseline; returns (gathered?, symmetric-detected?).
fn run_rendezvous(init: &InitialConfig, seed: u64) -> (bool, bool) {
    let k = init.agent_count();
    let mut ring = Ring::new(init, |_| Rendezvous::new(k));
    let out = ring
        .run(
            &mut Random::seeded(seed),
            RunLimits::for_instance(init.ring_size(), k),
        )
        .expect("rendezvous terminates");
    assert!(out.quiescent);
    let verdicts: Vec<RendezvousVerdict> = (0..k)
        .map(|i| ring.behavior(ringdeploy_sim::AgentId(i)).verdict())
        .collect();
    let positions = ring.staying_positions().expect("all staying");
    let gathered = verdicts.iter().all(|&v| v == RendezvousVerdict::Gathered)
        && positions.windows(2).all(|w| w[0] == w[1]);
    let symmetric = verdicts.iter().all(|&v| v == RendezvousVerdict::Symmetric);
    (gathered, symmetric)
}

/// Runs the contrast experiment and returns the printed report.
pub fn rendezvous_contrast() -> String {
    let mut out = String::new();
    out.push_str("== Rendezvous vs uniform deployment (the paper's headline contrast) ==\n\n");
    let mut table = TextTable::new(vec![
        "configuration",
        "l",
        "rendezvous",
        "uniform-deployment",
    ]);
    let mut rng = SmallRng::seed_from_u64(99);

    // Aperiodic workloads: both should succeed.
    for i in 0..3 {
        let init = random_aperiodic_config(&mut rng, 60, 6);
        let (gathered, _) = run_rendezvous(&init, i);
        let ud = Deployment::of(&init)
            .algorithm(Algorithm::LogSpace)
            .schedule(Schedule::Random(i))
            .expect("preset")
            .run()
            .expect("run")
            .succeeded();
        table.row(vec![
            format!("random aperiodic #{i} (n=60, k=6)"),
            "1".into(),
            if gathered {
                "gathers".into()
            } else {
                "FAILS".into()
            },
            if ud { "deploys".into() } else { "FAILS".into() },
        ]);
    }

    // Periodic workloads: rendezvous must fail, uniform deployment must not.
    for l in [2usize, 3, 6] {
        let init = periodic_config(60, 6, l);
        let (gathered, symmetric) = run_rendezvous(&init, 7);
        let ud = Deployment::of(&init)
            .algorithm(Algorithm::LogSpace)
            .schedule(Schedule::Random(7))
            .expect("preset")
            .run()
            .expect("run")
            .succeeded();
        table.row(vec![
            format!("periodic l={l} (n=60, k=6)"),
            l.to_string(),
            if gathered {
                "gathers (!)".into()
            } else if symmetric {
                "unsolvable (detected)".into()
            } else {
                "mixed".into()
            },
            if ud { "deploys".into() } else { "FAILS".into() },
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nRendezvous breaks symmetry and cannot be solved from periodic\n\
         configurations; uniform deployment attains symmetry and succeeds\n\
         from every initial configuration (paper §1.3).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contrast_holds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let aper = random_aperiodic_config(&mut rng, 40, 5);
        let (gathered, _) = run_rendezvous(&aper, 0);
        assert!(gathered);

        let peri = periodic_config(40, 4, 2);
        let (gathered, symmetric) = run_rendezvous(&peri, 0);
        assert!(!gathered);
        assert!(symmetric);
        let ud = Deployment::of(&peri)
            .algorithm(Algorithm::FullKnowledge)
            .schedule(Schedule::Random(0))
            .unwrap()
            .run()
            .unwrap();
        assert!(ud.succeeded());
    }

    #[test]
    fn report_renders() {
        let s = rendezvous_contrast();
        assert!(s.contains("unsolvable (detected)"));
        assert!(!s.contains("FAILS"));
    }
}
