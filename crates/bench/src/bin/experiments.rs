//! The experiment harness binary: regenerates every table and figure of
//! the paper as measured output.
//!
//! ```text
//! cargo run --release -p ringdeploy-bench --bin experiments            # everything
//! cargo run --release -p ringdeploy-bench --bin experiments -- table1  # one section
//! ```
//!
//! Sections: `table1`, `lower-bound`, `impossibility`, `figures`,
//! `rendezvous`, `ablation`, `optimality`, `tokens`, `tree`, `verified`.

use ringdeploy_bench::{
    figures, impossibility, lower_bound, optimality, rendezvous_contrast, scheduler_ablation,
    table1, tokens_necessity, tree_extension, verified,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sections: Vec<&str> = if args.is_empty() {
        vec![
            "table1",
            "lower-bound",
            "impossibility",
            "figures",
            "rendezvous",
            "ablation",
            "optimality",
            "tokens",
            "tree",
            "verified",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match *section {
            "table1" => print!("{}", table1()),
            "lower-bound" | "lower_bound" => print!("{}", lower_bound()),
            "impossibility" => print!("{}", impossibility()),
            "figures" => print!("{}", figures()),
            "rendezvous" => print!("{}", rendezvous_contrast()),
            "ablation" => print!("{}", scheduler_ablation()),
            "optimality" => print!("{}", optimality()),
            "tokens" => print!("{}", tokens_necessity()),
            "tree" => print!("{}", tree_extension()),
            "verified" => print!("{}", verified()),
            other => {
                eprintln!(
                    "unknown section `{other}`; available: table1, lower-bound, \
                     impossibility, figures, rendezvous, ablation, optimality, \
                     tokens, tree, verified"
                );
                std::process::exit(2);
            }
        }
    }
}
