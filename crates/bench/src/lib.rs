//! # ringdeploy-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper as measured output:
//!
//! * [`table1`] — the complexity table (Results 1, 2 and 4) as measured
//!   memory / ideal time / total moves over parameter sweeps, with ratios
//!   against the paper's bounds;
//! * [`lower_bound`] — Theorems 1 and 2 on the Fig. 3 quarter-ring
//!   workload;
//! * [`impossibility`] — the Theorem 5 / Fig. 7 construction, showing the
//!   terminating strawman halting at the wrong spacing while the relaxed
//!   algorithm (Result 4) succeeds on the same ring;
//! * [`figures`] — scenario reproductions of Figs. 1, 2, 4, 5, 6, 8, 9
//!   and 11;
//! * [`rendezvous_contrast`] — the §1.3 contrast: rendezvous fails on
//!   periodic configurations, uniform deployment never does;
//! * [`scheduler_ablation`] — correctness across schedule adversaries.
//!
//! Run everything with `cargo run -p ringdeploy-bench --bin experiments`,
//! or a single section with e.g. `… --bin experiments -- table1`.

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::{
    figures, impossibility, lower_bound, optimality, rendezvous_contrast, scheduler_ablation,
    table1, tokens_necessity, tree_extension, verified,
};
