//! `ringdeploy` — command-line front end: run one uniform-deployment
//! instance and print the outcome (optionally with ASCII renders).
//!
//! ```text
//! ringdeploy --n 18 --homes 0,1,2,3,4,5 --algo algo1 --schedule random:42 --render
//! ringdeploy --n 60 --k 6 --seed 7 --algo relaxed --sync
//! ringdeploy --n 12 --homes 0,3,6,9 --algo algo2 --explore
//! ringdeploy --n 12 --homes 0,1,2,3 --algo algo1 --adversary moves
//! ringdeploy --n 12 --homes 0,3,6,9 --algo relaxed --certify --json
//! ```
//!
//! Options:
//!
//! * `--n <usize>`            ring size (required)
//! * `--homes <a,b,c>`        explicit agent homes, or
//! * `--k <usize>`            number of agents placed uniformly at random
//! * `--seed <u64>`           placement seed for `--k` (default 0)
//! * `--algo <name>`          `algo1` | `algo2` | `relaxed` |
//!   `partial-gathering[-g<G>]` (default `algo1`)
//! * `--g <usize>`            group size for `--algo partial-gathering`
//!   (default 2)
//! * `--schedule <s>`         `round-robin` | `random:<seed>` | `one-at-a-time`
//!   | `delay:<agent>` (default `round-robin`)
//! * `--sync`                 run in lock-step rounds and report ideal time
//! * `--explore`              exhaustively verify EVERY fair schedule of the
//!   instance (symmetry-reduced bounded model checking) instead of running one
//! * `--explore-serial`       with `--explore`: force the clone-free serial
//!   DFS instead of the work-stealing engine
//! * `--explore-threads <t>`  with `--explore`: run the work-stealing engine
//!   with exactly `t` workers (default: one per available core)
//! * `--adversary <obj>`      synthesise the exact worst-case schedule for
//!   `moves` | `activations` | `memory` (branch-and-bound over every fair
//!   schedule) and report the maximum with its replayable witness
//! * `--symmetry <mode>`      state-space quotient for `--explore` /
//!   `--adversary`: `off` | `rotation` (default) | `dihedral`. Dihedral
//!   adds reflection + relabeling of indistinguishable co-located agents;
//!   it is validated per instance (see DESIGN.md §0.11) and reports a
//!   quotient cycle where the fold does not apply
//! * `--certify`              certify the paper bounds: adversarial exact
//!   worst case for all three objectives vs. the recorded `c·k·n`-style
//!   bounds, with the competitive ratio vs. the offline oracle; exits
//!   non-zero if any bound is violated
//! * `--tier <t>`             with `--certify`: evidence tier `sweep` |
//!   `exhaustive` | `adversarial` (default `adversarial`)
//! * `--faults <spec>`        deterministic fault plan: comma-separated
//!   `crash=<agent>@<step>` (crash-stop that agent after its `<step>`-th
//!   activation) and `dynamic-edge[:<budget>]` (grant the adversary that
//!   many one-edge outages under 1-interval connectivity); composes with
//!   every mode including `--explore`/`--adversary`/`--certify`
//! * `--render`               print before/after ASCII ring renders
//! * `--json`                 print the full report as JSON instead of text
//!
//! Daemon modes (see `DESIGN.md` §0.7 — the `ringdeployd` service):
//!
//! * `--serve stdio|<addr>`   run the long-lived deployment daemon on
//!   stdin/stdout or a TCP listener (`127.0.0.1:0` picks a free port and
//!   prints `listening <addr>`); tuning: `--workers`, `--queue`,
//!   `--cache-bytes`, `--max-jobs`
//! * `--connect <addr>`       submit one job to a running daemon and print
//!   its frames verbatim (one JSON object per line). The job is
//!   `--job sweep|explore|adversary|certify` over `--workload
//!   random|aperiodic|quarter|periodic|uniform|large` with `--n`, `--k`
//!   (and `--l` for periodic), `--seeds a,b,c`, `--algo`, `--objective`,
//!   `--tier`, `--id`, `--backpressure block|reject`. `--connect <addr>
//!   --stats` prints a stats snapshot; `--connect <addr> --shutdown`
//!   drains and stops the daemon.

use std::process::ExitCode;

use rand::SeedableRng;
use ringdeploy::analysis::certify::{certify_one, CertifySettings, EvidenceTier};
use ringdeploy::analysis::{random_config, worst_case_one};
use ringdeploy::sim::adversary::{Adversary, Objective};
use ringdeploy::sim::explore::SymmetryMode;
use ringdeploy::{
    AgentId, Algorithm, Deployment, FaultPlan, FullKnowledge, InitialConfig, Ring, Schedule,
};

struct Options {
    n: usize,
    homes: Option<Vec<usize>>,
    k: Option<usize>,
    seed: u64,
    algo: Algorithm,
    g: Option<usize>,
    schedule: Schedule,
    schedule_set: bool,
    explore: bool,
    explore_serial: bool,
    explore_threads: Option<usize>,
    adversary: Option<Objective>,
    symmetry: SymmetryMode,
    symmetry_set: bool,
    certify: bool,
    tier: EvidenceTier,
    tier_set: bool,
    faults: FaultPlan,
    render: bool,
    json: bool,
}

fn usage() -> &'static str {
    "usage: ringdeploy --n <nodes> (--homes a,b,c | --k <agents> [--seed s]) \
     [--algo algo1|algo2|relaxed|partial-gathering [--g <size>]] \
     [--schedule round-robin|random:<seed>|one-at-a-time|delay:<agent>] \
     [--sync] [--explore [--explore-serial | --explore-threads <t>]] \
     [--adversary moves|activations|memory] [--symmetry off|rotation|dihedral] \
     [--certify [--tier sweep|exhaustive|adversarial]] \
     [--faults crash=<agent>@<step>,dynamic-edge[:<budget>]] [--render] [--json]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        n: 0,
        homes: None,
        k: None,
        seed: 0,
        algo: Algorithm::FullKnowledge,
        g: None,
        schedule: Schedule::RoundRobin,
        schedule_set: false,
        explore: false,
        explore_serial: false,
        explore_threads: None,
        adversary: None,
        symmetry: SymmetryMode::Rotation,
        symmetry_set: false,
        certify: false,
        tier: EvidenceTier::Adversarial,
        tier_set: false,
        faults: FaultPlan::none(),
        render: false,
        json: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                opts.n = value(&mut i)?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--homes" => {
                let list = value(&mut i)?;
                let homes: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                opts.homes = Some(homes.map_err(|e| format!("--homes: {e}"))?);
            }
            "--k" => {
                opts.k = Some(value(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?);
            }
            "--seed" => {
                opts.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--algo" => {
                let spec = value(&mut i)?;
                opts.algo = Algorithm::from_name(&spec)
                    .ok_or_else(|| format!("unknown algorithm `{spec}`"))?;
            }
            "--g" => {
                opts.g = Some(value(&mut i)?.parse().map_err(|e| format!("--g: {e}"))?);
            }
            "--schedule" => {
                let spec = value(&mut i)?;
                opts.schedule = parse_schedule(&spec)?;
                opts.schedule_set = true;
            }
            "--sync" => opts.schedule = Schedule::Synchronous,
            "--explore" => opts.explore = true,
            "--explore-serial" => opts.explore_serial = true,
            "--explore-threads" => {
                let t: usize = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--explore-threads: {e}"))?;
                if t == 0 {
                    return Err("--explore-threads must be at least 1".to_string());
                }
                opts.explore_threads = Some(t);
            }
            "--adversary" => {
                opts.adversary = Some(match value(&mut i)?.as_str() {
                    "moves" | "total-moves" => Objective::TotalMoves,
                    "activations" | "total-activations" => Objective::TotalActivations,
                    "memory" | "peak-memory-bits" => Objective::PeakMemoryBits,
                    other => return Err(format!("unknown objective `{other}`")),
                });
            }
            "--symmetry" => {
                opts.symmetry = match value(&mut i)?.as_str() {
                    "off" | "none" => SymmetryMode::Off,
                    "rotation" => SymmetryMode::Rotation,
                    "dihedral" => SymmetryMode::Dihedral,
                    other => return Err(format!("unknown symmetry mode `{other}`")),
                };
                opts.symmetry_set = true;
            }
            "--certify" => opts.certify = true,
            "--tier" => {
                let spec = value(&mut i)?;
                opts.tier = EvidenceTier::from_name(&spec)
                    .ok_or_else(|| format!("unknown evidence tier `{spec}`"))?;
                opts.tier_set = true;
            }
            "--faults" => {
                let spec = value(&mut i)?;
                opts.faults = parse_faults(&spec)?;
            }
            "--render" => opts.render = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
        i += 1;
    }
    if opts.n == 0 {
        return Err(format!("--n is required\n{}", usage()));
    }
    if opts.homes.is_none() && opts.k.is_none() {
        return Err(format!("one of --homes / --k is required\n{}", usage()));
    }
    if opts.explore_serial && !opts.explore {
        return Err(format!("--explore-serial requires --explore\n{}", usage()));
    }
    if opts.explore_threads.is_some() && !opts.explore {
        return Err(format!("--explore-threads requires --explore\n{}", usage()));
    }
    if opts.explore_threads.is_some() && opts.explore_serial {
        return Err(format!(
            "--explore-serial and --explore-threads are mutually exclusive\n{}",
            usage()
        ));
    }
    if let Some(g) = opts.g {
        if !opts.algo.name().starts_with("partial-gathering") {
            return Err(format!(
                "--g only applies to --algo partial-gathering\n{}",
                usage()
            ));
        }
        opts.algo = Algorithm::partial_gathering(g);
    }
    if opts.tier_set && !opts.certify {
        return Err(format!("--tier requires --certify\n{}", usage()));
    }
    if opts.symmetry_set && !opts.explore && opts.adversary.is_none() {
        return Err(format!(
            "--symmetry requires --explore or --adversary\n{}",
            usage()
        ));
    }
    let quantified_modes = usize::from(opts.explore)
        + usize::from(opts.adversary.is_some())
        + usize::from(opts.certify);
    if quantified_modes > 1 {
        return Err(format!(
            "--explore, --adversary and --certify are mutually exclusive\n{}",
            usage()
        ));
    }
    if quantified_modes > 0 && (opts.schedule_set || opts.schedule == Schedule::Synchronous) {
        return Err(format!(
            "--explore/--adversary/--certify quantify over every fair schedule; \
             drop --schedule/--sync\n{}",
            usage()
        ));
    }
    Ok(opts)
}

/// Parses `--faults`: comma-separated `crash=<agent>@<step>` and
/// `dynamic-edge[:<budget>]` clauses, e.g. `crash=0@3,dynamic-edge:2`.
/// `dynamic-edge` without a budget grants one outage.
fn parse_faults(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if let Some(rest) = clause.strip_prefix("crash=") {
            let (agent, after) = rest
                .split_once('@')
                .ok_or_else(|| format!("--faults: `{clause}` should be crash=<agent>@<step>"))?;
            let agent: usize = agent
                .parse()
                .map_err(|e| format!("--faults crash agent: {e}"))?;
            let after: u64 = after
                .parse()
                .map_err(|e| format!("--faults crash step: {e}"))?;
            plan = plan.with_crash(AgentId(agent), after);
        } else if clause == "dynamic-edge" {
            plan = plan.with_edge_outages(1);
        } else if let Some(budget) = clause.strip_prefix("dynamic-edge:") {
            let budget: u32 = budget
                .parse()
                .map_err(|e| format!("--faults dynamic-edge budget: {e}"))?;
            plan = plan.with_edge_outages(budget);
        } else {
            return Err(format!(
                "--faults: unknown clause `{clause}` (want crash=<agent>@<step> \
                 or dynamic-edge[:<budget>])"
            ));
        }
    }
    Ok(plan)
}

fn parse_schedule(spec: &str) -> Result<Schedule, String> {
    if spec == "round-robin" {
        return Ok(Schedule::RoundRobin);
    }
    if spec == "one-at-a-time" {
        return Ok(Schedule::OneAtATime);
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        return Ok(Schedule::Random(
            seed.parse()
                .map_err(|e| format!("--schedule random: {e}"))?,
        ));
    }
    if let Some(agent) = spec.strip_prefix("delay:") {
        return Ok(Schedule::DelayAgent(
            agent
                .parse()
                .map_err(|e| format!("--schedule delay: {e}"))?,
        ));
    }
    Err(format!("unknown schedule `{spec}`"))
}

fn run(opts: &Options) -> Result<(), String> {
    let init = match (&opts.homes, opts.k) {
        (Some(homes), _) => InitialConfig::new(opts.n, homes.clone()).map_err(|e| e.to_string())?,
        (None, Some(k)) => {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(opts.seed);
            random_config(&mut rng, opts.n, k)
        }
        (None, None) => unreachable!("validated in parse_args"),
    };
    if let Some(crash) = opts
        .faults
        .crashes()
        .iter()
        .find(|c| c.agent.index() >= init.agent_count())
    {
        return Err(format!(
            "--faults: crash agent {} out of range (k = {})",
            crash.agent.index(),
            init.agent_count()
        ));
    }
    let init = init.with_faults(opts.faults.clone());
    if !opts.faults.is_empty() {
        println!("faults: {}", opts.faults);
    }
    println!(
        "ring n = {}, k = {}, homes = {:?} (symmetry degree l = {})",
        init.ring_size(),
        init.agent_count(),
        init.homes(),
        init.symmetry_degree()
    );
    if opts.render {
        let before: Ring<FullKnowledge> =
            Ring::new(&init, |_| FullKnowledge::new(init.agent_count()));
        println!(
            "\ninitial configuration:\n{}",
            ringdeploy::render_ring(&before)
        );
    }
    if opts.explore {
        return explore(opts, &init);
    }
    if let Some(objective) = opts.adversary {
        return adversary(opts, &init, objective);
    }
    if opts.certify {
        return certify(opts, &init);
    }
    let report = Deployment::of(&init)
        .algorithm(opts.algo)
        .run_preset(opts.schedule)
        .map_err(|e| e.to_string())?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::ToJson;
            println!("{}", report.to_json());
            return if report.succeeded() || report.degraded() {
                Ok(())
            } else {
                Err(format!("deployment check failed: {:?}", report.check))
            };
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    println!("algorithm : {}", report.algorithm.name());
    println!("scheduler : {}", report.scheduler);
    println!(
        "verdict   : {}",
        if report.succeeded() {
            "success (problem predicate satisfied)"
        } else if report.degraded() {
            "degraded (crash-stop agents excused; survivors settled)"
        } else {
            "FAILED"
        }
    );
    println!("positions : {:?}", report.positions);
    println!(
        "moves     : {} total, {} max per agent",
        report.metrics.total_moves(),
        report.metrics.max_moves()
    );
    println!(
        "memory    : {} bits peak per agent",
        report.metrics.peak_memory_bits()
    );
    println!("messages  : {}", report.metrics.messages_sent());
    if let Some(rounds) = report.ideal_time {
        println!("ideal time: {rounds} rounds");
    }
    if !report.succeeded() && !report.degraded() {
        return Err(format!("deployment check failed: {:?}", report.check));
    }
    Ok(())
}

/// Exhaustively verifies the instance: every fair asynchronous schedule,
/// with rotation-symmetry reduction, via the `Explore` batch surface.
fn explore(opts: &Options, init: &InitialConfig) -> Result<(), String> {
    // The `Explore` batch surface enumerates Workload families; a CLI
    // instance has explicit homes, so it drives the Explorer directly.
    let report = explore_instance(opts, init)?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::{Json, ToJson};
            let json = Json::object([
                ("mode", "explore".to_json()),
                ("algorithm", opts.algo.to_json()),
                ("n", init.ring_size().to_json()),
                ("k", init.agent_count().to_json()),
                ("symmetry_degree", init.symmetry_degree().to_json()),
                ("report", report.to_json()),
            ]);
            println!("{json}");
            return Ok(());
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    let quotient = match opts.symmetry {
        SymmetryMode::Off => "no quotient",
        SymmetryMode::Rotation => "rotation quotient",
        SymmetryMode::Dihedral => "dihedral quotient",
    };
    println!("algorithm : {}", opts.algo.name());
    println!("mode      : exhaustive (every fair schedule, {quotient})");
    println!(
        "verdict   : {}",
        if opts.faults.is_empty() {
            "verified — all schedules reach uniform deployment, no livelock"
        } else {
            "verified — every bounded-fault schedule quiesces \
             (satisfied or crash-degraded), no livelock"
        }
    );
    println!("states    : {} state classes visited", report.states);
    println!(
        "terminals : {} distinct final configurations",
        report.terminals
    );
    println!(
        "depth     : {} (longest schedule explored)",
        report.max_depth_seen
    );
    println!("merges    : {} back/cross edges", report.merge_edges);
    println!(
        "frontier  : {} peak live snapshots (serial: deepest DFS path; \
         stealing: peak outstanding steal tasks)",
        report.peak_frontier
    );
    Ok(())
}

fn explore_instance(
    opts: &Options,
    init: &InitialConfig,
) -> Result<ringdeploy::sim::explore::ExploreReport, String> {
    use ringdeploy::analysis::{explore_one, explore_one_serial};
    use ringdeploy::sim::explore::{ExploreLimits, Explorer};

    let mut explorer = Explorer::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .symmetry(opts.symmetry);
    if let Some(threads) = opts.explore_threads {
        explorer = explorer.threads(threads);
    }
    let result = if opts.explore_serial {
        explore_one_serial(opts.algo, init, &explorer)
    } else {
        explore_one(opts.algo, init, &explorer)
    };
    result.map_err(|e| format!("exhaustive verification FAILED: {e}"))
}

/// Synthesises the exact worst-case schedule for one objective
/// (branch-and-bound over every fair schedule, rotation quotient).
fn adversary(opts: &Options, init: &InitialConfig, objective: Objective) -> Result<(), String> {
    use ringdeploy::sim::explore::ExploreLimits;

    let engine = Adversary::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .symmetry(opts.symmetry);
    let worst = worst_case_one(opts.algo, init, &engine, objective)
        .map_err(|e| format!("worst-case search FAILED: {e}"))?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::{Json, ToJson};
            let json = Json::object([
                ("mode", "adversary".to_json()),
                ("algorithm", opts.algo.to_json()),
                ("n", init.ring_size().to_json()),
                ("k", init.agent_count().to_json()),
                ("symmetry_degree", init.symmetry_degree().to_json()),
                ("report", worst.to_json()),
            ]);
            println!("{json}");
            return Ok(());
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    println!("algorithm : {}", opts.algo.name());
    println!("mode      : adversarial worst case (every fair schedule, exact)");
    println!("objective : {objective}");
    println!("worst case: {}", worst.value);
    println!(
        "witness   : {} scheduler picks (replayable via Replay)",
        worst.witness.len()
    );
    println!(
        "search    : {} states, {} expansions, {} dominance prunes, {} bound prunes, depth {}",
        worst.distinct_states,
        worst.expansions,
        worst.dominance_prunes,
        worst.bound_prunes,
        worst.max_depth_seen
    );
    Ok(())
}

/// Certifies the paper bounds for all three objectives at the selected
/// evidence tier; fails (non-zero exit) if any bound is violated.
fn certify(opts: &Options, init: &InitialConfig) -> Result<(), String> {
    let settings = CertifySettings::default();
    let mut certificates = Vec::new();
    for objective in Objective::ALL {
        let cert = certify_one(opts.algo, init, objective, opts.tier, &settings)
            .map_err(|e| format!("certification FAILED ({objective}): {e}"))?;
        certificates.push(cert);
    }
    let violation = violation_error(&certificates);
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::{Json, ToJson};
            let json = Json::object([
                ("mode", "certify".to_json()),
                ("algorithm", opts.algo.to_json()),
                ("n", init.ring_size().to_json()),
                ("k", init.agent_count().to_json()),
                ("symmetry_degree", init.symmetry_degree().to_json()),
                ("tier", opts.tier.to_json()),
                ("certificates", certificates.to_json()),
            ]);
            println!("{json}");
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    } else {
        println!("algorithm : {}", opts.algo.name());
        println!("mode      : bound certification ({} tier)", opts.tier);
        for cert in &certificates {
            let ratio = cert
                .competitive_ratio
                .map(|r| format!(", {r:.2}x vs offline oracle"))
                .unwrap_or_default();
            println!(
                "{:<17} : worst {:>6}  bound {:>8.1} ({} with c = {})  {}{ratio}",
                cert.objective.name(),
                cert.worst_value,
                cert.bound.value,
                cert.bound.formula,
                cert.bound.constant,
                if cert.holds() { "OK" } else { "VIOLATED" },
            );
        }
    }
    match violation {
        Some(error) => Err(error),
        None => Ok(()),
    }
}

/// The non-zero-exit decision of `--certify` (the CI gate): `Some`
/// error text when any certificate's measured worst case violates its
/// recorded paper bound.
fn violation_error(certificates: &[ringdeploy::BoundCertificate]) -> Option<String> {
    let violated = certificates.iter().filter(|c| !c.holds()).count();
    (violated > 0).then(|| {
        format!(
            "{violated} of {} paper bounds VIOLATED by a measured worst case",
            certificates.len()
        )
    })
}

/// `--serve` / `--connect`: the `ringdeployd` daemon front end. Kept in
/// one serde-gated module because the whole wire protocol needs JSON.
#[cfg(feature = "serde")]
mod service_cli {
    use std::io::Write;
    use std::process::ExitCode;

    use ringdeploy::analysis::certify::EvidenceTier;
    use ringdeploy::analysis::key::JobKind;
    use ringdeploy::analysis::Workload;
    use ringdeploy::service::{
        parse_response, serve_stdio, Backpressure, Client, DaemonConfig, JobSpec, Request,
        Response, Server,
    };
    use ringdeploy::sim::adversary::Objective;
    use ringdeploy::Algorithm;
    use ringdeploy_json::ToJson;

    /// True when the invocation is a daemon-mode one (dispatched here
    /// instead of the single-instance parser).
    pub fn wants_dispatch(args: &[String]) -> bool {
        args.iter().any(|a| a == "--serve" || a == "--connect")
    }

    pub fn dispatch(args: &[String]) -> ExitCode {
        match run(args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        }
    }

    fn usage() -> &'static str {
        "usage: ringdeploy --serve stdio|<addr> [--workers w] [--queue q] \
         [--cache-bytes b] [--max-jobs j]\n\
         \x20      ringdeploy --connect <addr> (--stats | --shutdown | \
         [--job sweep|explore|adversary|certify] --workload <family> --n <n> --k <k> \
         [--l <l>] [--seeds a,b,c] [--algo a [--g <size>]] [--objective o] [--tier t] \
         [--faults spec] [--timeout-ms ms] [--id i] [--backpressure block|reject])"
    }

    fn run(args: &[String]) -> Result<ExitCode, String> {
        if args.iter().any(|a| a == "--serve") {
            serve(args)
        } else {
            connect(args)
        }
    }

    fn value(args: &[String], i: &mut usize) -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}\n{}", args[*i - 1], usage()))
    }

    fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        raw.parse().map_err(|e| format!("{flag}: {e}"))
    }

    fn serve(args: &[String]) -> Result<ExitCode, String> {
        let mut target = None;
        let mut config = DaemonConfig::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--serve" => target = Some(value(args, &mut i)?),
                "--workers" => config.workers = parse("--workers", &value(args, &mut i)?)?,
                "--queue" => config.queue_capacity = parse("--queue", &value(args, &mut i)?)?,
                "--cache-bytes" => {
                    config.cache_bytes = parse("--cache-bytes", &value(args, &mut i)?)?;
                }
                "--max-jobs" => config.max_jobs = parse("--max-jobs", &value(args, &mut i)?)?,
                other => return Err(format!("unknown serve option `{other}`\n{}", usage())),
            }
            i += 1;
        }
        let target = target.expect("dispatched on --serve");
        let stats = if target == "stdio" {
            let stats = serve_stdio(config);
            // stdout is the protocol channel in stdio mode.
            eprintln!("{}", stats.to_json());
            stats
        } else {
            let server =
                Server::bind(&target, config).map_err(|e| format!("--serve {target}: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            println!("listening {addr}");
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            let stats = server.run();
            println!("{}", stats.to_json());
            stats
        };
        let _ = stats;
        Ok(ExitCode::SUCCESS)
    }

    fn workload(family: &str, n: usize, k: usize, l: Option<usize>) -> Result<Workload, String> {
        match family {
            "random" => Ok(Workload::Random { n, k }),
            "aperiodic" | "random-aperiodic" => Ok(Workload::RandomAperiodic { n, k }),
            "quarter" | "quarter-ring" => Ok(Workload::QuarterRing { n, k }),
            "periodic" => {
                let l = l.ok_or_else(|| "--workload periodic requires --l".to_string())?;
                Ok(Workload::Periodic { n, k, l })
            }
            "uniform" => Ok(Workload::Uniform { n, k }),
            "large" | "large-ring" => Ok(Workload::LargeRing { n, k }),
            other => Err(format!("unknown workload family `{other}`\n{}", usage())),
        }
    }

    enum Action {
        Stats,
        Shutdown,
        Submit,
    }

    fn connect(args: &[String]) -> Result<ExitCode, String> {
        let mut addr = None;
        let mut action = Action::Submit;
        let mut job_kind = JobKind::Sweep;
        let mut algo = Algorithm::FullKnowledge;
        let mut g: Option<usize> = None;
        let mut family = "random".to_string();
        let mut n = 0usize;
        let mut k = 0usize;
        let mut l = None;
        let mut seeds = vec![0u64];
        let mut objectives = Vec::new();
        let mut tier = EvidenceTier::Adversarial;
        let mut faults = ringdeploy::FaultPlan::none();
        let mut timeout_ms = None;
        let mut id = 1u64;
        let mut backpressure = Backpressure::Block;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--connect" => addr = Some(value(args, &mut i)?),
                "--stats" => action = Action::Stats,
                "--shutdown" => action = Action::Shutdown,
                "--job" => {
                    let spec = value(args, &mut i)?;
                    job_kind = JobKind::from_name(&spec)
                        .ok_or_else(|| format!("unknown job kind `{spec}`\n{}", usage()))?;
                }
                "--algo" => {
                    let spec = value(args, &mut i)?;
                    algo = Algorithm::from_name(&spec)
                        .ok_or_else(|| format!("unknown algorithm `{spec}`"))?;
                }
                "--g" => {
                    g = Some(parse("--g", &value(args, &mut i)?)?);
                }
                "--workload" => family = value(args, &mut i)?,
                "--n" => n = parse("--n", &value(args, &mut i)?)?,
                "--k" => k = parse("--k", &value(args, &mut i)?)?,
                "--l" => l = Some(parse("--l", &value(args, &mut i)?)?),
                "--seeds" => {
                    let list = value(args, &mut i)?;
                    let parsed: Result<Vec<u64>, String> = list
                        .split(',')
                        .map(|s| parse("--seeds", s.trim()))
                        .collect();
                    seeds = parsed?;
                }
                "--objective" => {
                    objectives.push(match value(args, &mut i)?.as_str() {
                        "moves" | "total-moves" => Objective::TotalMoves,
                        "activations" | "total-activations" => Objective::TotalActivations,
                        "memory" | "peak-memory-bits" => Objective::PeakMemoryBits,
                        other => return Err(format!("unknown objective `{other}`")),
                    });
                }
                "--tier" => {
                    let spec = value(args, &mut i)?;
                    tier = EvidenceTier::from_name(&spec)
                        .ok_or_else(|| format!("unknown evidence tier `{spec}`"))?;
                }
                "--faults" => {
                    let spec = value(args, &mut i)?;
                    faults = super::parse_faults(&spec)?;
                }
                "--timeout-ms" => {
                    timeout_ms = Some(parse("--timeout-ms", &value(args, &mut i)?)?);
                }
                "--id" => id = parse("--id", &value(args, &mut i)?)?,
                "--backpressure" => {
                    let spec = value(args, &mut i)?;
                    backpressure = Backpressure::from_name(&spec)
                        .ok_or_else(|| format!("unknown backpressure policy `{spec}`"))?;
                }
                other => return Err(format!("unknown connect option `{other}`\n{}", usage())),
            }
            i += 1;
        }
        let addr = addr.expect("dispatched on --connect");
        if let Some(g) = g {
            if !algo.name().starts_with("partial-gathering") {
                return Err(format!(
                    "--g only applies to --algo partial-gathering\n{}",
                    usage()
                ));
            }
            algo = Algorithm::partial_gathering(g);
        }
        // Retry transient connect failures (a daemon launched just
        // before us may still be binding its listener).
        let mut client = Client::connect_with_retry(&addr, 5, std::time::Duration::from_millis(50))
            .map_err(|e| format!("--connect {addr}: {e}"))?;
        match action {
            Action::Stats => {
                client.send(&Request::Stats).map_err(|e| e.to_string())?;
                let line = client
                    .recv_line()
                    .map_err(|e| e.to_string())?
                    .ok_or_else(|| "daemon closed the connection".to_string())?;
                println!("{line}");
                Ok(ExitCode::SUCCESS)
            }
            Action::Shutdown => {
                client.send(&Request::Shutdown).map_err(|e| e.to_string())?;
                while let Some(line) = client.recv_line().map_err(|e| e.to_string())? {
                    println!("{line}");
                    if matches!(parse_response(&line), Ok(Response::Bye)) {
                        break;
                    }
                }
                Ok(ExitCode::SUCCESS)
            }
            Action::Submit => {
                if n == 0 || k == 0 {
                    return Err(format!("--n and --k are required to submit\n{}", usage()));
                }
                let job = JobSpec {
                    kind: job_kind,
                    algorithms: vec![algo],
                    workloads: vec![workload(&family, n, k, l)?],
                    schedules: Vec::new(),
                    objectives,
                    tier,
                    seeds,
                    faults,
                    timeout_ms,
                };
                client
                    .send(&Request::Submit {
                        id,
                        backpressure,
                        job,
                    })
                    .map_err(|e| e.to_string())?;
                // Forward frames verbatim (the output stays jq-able) and
                // derive the exit code from the job's terminal frame.
                while let Some(line) = client.recv_line().map_err(|e| e.to_string())? {
                    println!("{line}");
                    match parse_response(&line) {
                        Ok(Response::Done { id: done_id, .. }) if done_id == id => {
                            return Ok(ExitCode::SUCCESS);
                        }
                        Ok(
                            Response::Rejected { .. }
                            | Response::Error { .. }
                            | Response::Timeout { .. },
                        ) => {
                            return Ok(ExitCode::FAILURE);
                        }
                        _ => {}
                    }
                }
                Err("daemon closed the connection before the job finished".to_string())
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    #[cfg(feature = "serde")]
    if service_cli::wants_dispatch(&args) {
        return service_cli::dispatch(&args);
    }
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringdeploy::analysis::PaperBound;
    use ringdeploy::BoundCertificate;

    fn certificate(worst_value: u64, bound_value: f64) -> BoundCertificate {
        BoundCertificate {
            algorithm: Algorithm::FullKnowledge,
            objective: Objective::TotalMoves,
            tier: EvidenceTier::Adversarial,
            n: 12,
            k: 4,
            symmetry_degree: 1,
            bound: PaperBound {
                formula: "c*k*n",
                constant: 3.0,
                value: bound_value,
            },
            worst_value,
            witness: None,
            terminal_fingerprint: None,
            oracle_moves: None,
            competitive_ratio: None,
            search: None,
            degradation: None,
            instance_fingerprint: None,
        }
    }

    /// The CI gate's decision function: a violated bound — which no real
    /// instance produces (that is what the CI `adversary` job asserts) —
    /// must turn into the non-zero-exit error, and exactly then. A bound
    /// met with equality still holds.
    #[test]
    fn violation_error_fires_exactly_on_violated_bounds() {
        assert_eq!(violation_error(&[certificate(96, 144.0)]), None);
        assert_eq!(violation_error(&[certificate(144, 144.0)]), None);
        let error = violation_error(&[
            certificate(96, 144.0),
            certificate(145, 144.0),
            certificate(700, 144.0),
        ])
        .expect("violations must fail the run");
        assert_eq!(
            error,
            "2 of 3 paper bounds VIOLATED by a measured worst case"
        );
    }
}
