//! `ringdeploy` — command-line front end: run one uniform-deployment
//! instance and print the outcome (optionally with ASCII renders).
//!
//! ```text
//! ringdeploy --n 18 --homes 0,1,2,3,4,5 --algo algo1 --schedule random:42 --render
//! ringdeploy --n 60 --k 6 --seed 7 --algo relaxed --sync
//! ```
//!
//! Options:
//!
//! * `--n <usize>`            ring size (required)
//! * `--homes <a,b,c>`        explicit agent homes, or
//! * `--k <usize>`            number of agents placed uniformly at random
//! * `--seed <u64>`           placement seed for `--k` (default 0)
//! * `--algo <name>`          `algo1` | `algo2` | `relaxed` (default `algo1`)
//! * `--schedule <s>`         `round-robin` | `random:<seed>` | `one-at-a-time`
//!   | `delay:<agent>` (default `round-robin`)
//! * `--sync`                 run in lock-step rounds and report ideal time
//! * `--render`               print before/after ASCII ring renders
//! * `--json`                 print the full report as JSON instead of text

use std::process::ExitCode;

use rand::SeedableRng;
use ringdeploy::analysis::random_config;
use ringdeploy::{Algorithm, Deployment, FullKnowledge, InitialConfig, Ring, Schedule};

struct Options {
    n: usize,
    homes: Option<Vec<usize>>,
    k: Option<usize>,
    seed: u64,
    algo: Algorithm,
    schedule: Schedule,
    render: bool,
    json: bool,
}

fn usage() -> &'static str {
    "usage: ringdeploy --n <nodes> (--homes a,b,c | --k <agents> [--seed s]) \
     [--algo algo1|algo2|relaxed] [--schedule round-robin|random:<seed>|one-at-a-time|delay:<agent>] \
     [--sync] [--render] [--json]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        n: 0,
        homes: None,
        k: None,
        seed: 0,
        algo: Algorithm::FullKnowledge,
        schedule: Schedule::RoundRobin,
        render: false,
        json: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                opts.n = value(&mut i)?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--homes" => {
                let list = value(&mut i)?;
                let homes: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                opts.homes = Some(homes.map_err(|e| format!("--homes: {e}"))?);
            }
            "--k" => {
                opts.k = Some(value(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?);
            }
            "--seed" => {
                opts.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--algo" => {
                opts.algo = match value(&mut i)?.as_str() {
                    "algo1" | "full-knowledge" => Algorithm::FullKnowledge,
                    "algo2" | "log-space" => Algorithm::LogSpace,
                    "relaxed" | "no-knowledge" => Algorithm::Relaxed,
                    other => return Err(format!("unknown algorithm `{other}`")),
                };
            }
            "--schedule" => {
                let spec = value(&mut i)?;
                opts.schedule = parse_schedule(&spec)?;
            }
            "--sync" => opts.schedule = Schedule::Synchronous,
            "--render" => opts.render = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
        i += 1;
    }
    if opts.n == 0 {
        return Err(format!("--n is required\n{}", usage()));
    }
    if opts.homes.is_none() && opts.k.is_none() {
        return Err(format!("one of --homes / --k is required\n{}", usage()));
    }
    Ok(opts)
}

fn parse_schedule(spec: &str) -> Result<Schedule, String> {
    if spec == "round-robin" {
        return Ok(Schedule::RoundRobin);
    }
    if spec == "one-at-a-time" {
        return Ok(Schedule::OneAtATime);
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        return Ok(Schedule::Random(
            seed.parse()
                .map_err(|e| format!("--schedule random: {e}"))?,
        ));
    }
    if let Some(agent) = spec.strip_prefix("delay:") {
        return Ok(Schedule::DelayAgent(
            agent
                .parse()
                .map_err(|e| format!("--schedule delay: {e}"))?,
        ));
    }
    Err(format!("unknown schedule `{spec}`"))
}

fn run(opts: &Options) -> Result<(), String> {
    let init = match (&opts.homes, opts.k) {
        (Some(homes), _) => InitialConfig::new(opts.n, homes.clone()).map_err(|e| e.to_string())?,
        (None, Some(k)) => {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(opts.seed);
            random_config(&mut rng, opts.n, k)
        }
        (None, None) => unreachable!("validated in parse_args"),
    };
    println!(
        "ring n = {}, k = {}, homes = {:?} (symmetry degree l = {})",
        init.ring_size(),
        init.agent_count(),
        init.homes(),
        init.symmetry_degree()
    );
    if opts.render {
        let before: Ring<FullKnowledge> =
            Ring::new(&init, |_| FullKnowledge::new(init.agent_count()));
        println!(
            "\ninitial configuration:\n{}",
            ringdeploy::render_ring(&before)
        );
    }
    let report = Deployment::of(&init)
        .algorithm(opts.algo)
        .run_preset(opts.schedule)
        .map_err(|e| e.to_string())?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::ToJson;
            println!("{}", report.to_json());
            return if report.succeeded() {
                Ok(())
            } else {
                Err(format!("deployment check failed: {:?}", report.check))
            };
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    println!("algorithm : {}", report.algorithm.name());
    println!("scheduler : {}", report.scheduler);
    println!(
        "verdict   : {}",
        if report.succeeded() {
            "uniform deployment reached"
        } else {
            "FAILED"
        }
    );
    println!("positions : {:?}", report.positions);
    println!(
        "moves     : {} total, {} max per agent",
        report.metrics.total_moves(),
        report.metrics.max_moves()
    );
    println!(
        "memory    : {} bits peak per agent",
        report.metrics.peak_memory_bits()
    );
    println!("messages  : {}", report.metrics.messages_sent());
    if let Some(rounds) = report.ideal_time {
        println!("ideal time: {rounds} rounds");
    }
    if !report.succeeded() {
        return Err(format!("deployment check failed: {:?}", report.check));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
