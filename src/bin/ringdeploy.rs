//! `ringdeploy` — command-line front end: run one uniform-deployment
//! instance and print the outcome (optionally with ASCII renders).
//!
//! ```text
//! ringdeploy --n 18 --homes 0,1,2,3,4,5 --algo algo1 --schedule random:42 --render
//! ringdeploy --n 60 --k 6 --seed 7 --algo relaxed --sync
//! ringdeploy --n 12 --homes 0,3,6,9 --algo algo2 --explore
//! ```
//!
//! Options:
//!
//! * `--n <usize>`            ring size (required)
//! * `--homes <a,b,c>`        explicit agent homes, or
//! * `--k <usize>`            number of agents placed uniformly at random
//! * `--seed <u64>`           placement seed for `--k` (default 0)
//! * `--algo <name>`          `algo1` | `algo2` | `relaxed` (default `algo1`)
//! * `--schedule <s>`         `round-robin` | `random:<seed>` | `one-at-a-time`
//!   | `delay:<agent>` (default `round-robin`)
//! * `--sync`                 run in lock-step rounds and report ideal time
//! * `--explore`              exhaustively verify EVERY fair schedule of the
//!   instance (symmetry-reduced bounded model checking) instead of running one
//! * `--explore-serial`       with `--explore`: force the serial (single-thread) engine
//! * `--render`               print before/after ASCII ring renders
//! * `--json`                 print the full report as JSON instead of text

use std::process::ExitCode;

use rand::SeedableRng;
use ringdeploy::analysis::random_config;
use ringdeploy::{Algorithm, Deployment, FullKnowledge, InitialConfig, Ring, Schedule};

struct Options {
    n: usize,
    homes: Option<Vec<usize>>,
    k: Option<usize>,
    seed: u64,
    algo: Algorithm,
    schedule: Schedule,
    schedule_set: bool,
    explore: bool,
    explore_serial: bool,
    render: bool,
    json: bool,
}

fn usage() -> &'static str {
    "usage: ringdeploy --n <nodes> (--homes a,b,c | --k <agents> [--seed s]) \
     [--algo algo1|algo2|relaxed] [--schedule round-robin|random:<seed>|one-at-a-time|delay:<agent>] \
     [--sync] [--explore [--explore-serial]] [--render] [--json]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        n: 0,
        homes: None,
        k: None,
        seed: 0,
        algo: Algorithm::FullKnowledge,
        schedule: Schedule::RoundRobin,
        schedule_set: false,
        explore: false,
        explore_serial: false,
        render: false,
        json: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                opts.n = value(&mut i)?.parse().map_err(|e| format!("--n: {e}"))?;
            }
            "--homes" => {
                let list = value(&mut i)?;
                let homes: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse()).collect();
                opts.homes = Some(homes.map_err(|e| format!("--homes: {e}"))?);
            }
            "--k" => {
                opts.k = Some(value(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?);
            }
            "--seed" => {
                opts.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--algo" => {
                opts.algo = match value(&mut i)?.as_str() {
                    "algo1" | "full-knowledge" => Algorithm::FullKnowledge,
                    "algo2" | "log-space" => Algorithm::LogSpace,
                    "relaxed" | "no-knowledge" => Algorithm::Relaxed,
                    other => return Err(format!("unknown algorithm `{other}`")),
                };
            }
            "--schedule" => {
                let spec = value(&mut i)?;
                opts.schedule = parse_schedule(&spec)?;
                opts.schedule_set = true;
            }
            "--sync" => opts.schedule = Schedule::Synchronous,
            "--explore" => opts.explore = true,
            "--explore-serial" => opts.explore_serial = true,
            "--render" => opts.render = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option `{other}`\n{}", usage())),
        }
        i += 1;
    }
    if opts.n == 0 {
        return Err(format!("--n is required\n{}", usage()));
    }
    if opts.homes.is_none() && opts.k.is_none() {
        return Err(format!("one of --homes / --k is required\n{}", usage()));
    }
    if opts.explore_serial && !opts.explore {
        return Err(format!("--explore-serial requires --explore\n{}", usage()));
    }
    if opts.explore && (opts.schedule_set || opts.schedule == Schedule::Synchronous) {
        return Err(format!(
            "--explore quantifies over every fair schedule; drop --schedule/--sync\n{}",
            usage()
        ));
    }
    Ok(opts)
}

fn parse_schedule(spec: &str) -> Result<Schedule, String> {
    if spec == "round-robin" {
        return Ok(Schedule::RoundRobin);
    }
    if spec == "one-at-a-time" {
        return Ok(Schedule::OneAtATime);
    }
    if let Some(seed) = spec.strip_prefix("random:") {
        return Ok(Schedule::Random(
            seed.parse()
                .map_err(|e| format!("--schedule random: {e}"))?,
        ));
    }
    if let Some(agent) = spec.strip_prefix("delay:") {
        return Ok(Schedule::DelayAgent(
            agent
                .parse()
                .map_err(|e| format!("--schedule delay: {e}"))?,
        ));
    }
    Err(format!("unknown schedule `{spec}`"))
}

fn run(opts: &Options) -> Result<(), String> {
    let init = match (&opts.homes, opts.k) {
        (Some(homes), _) => InitialConfig::new(opts.n, homes.clone()).map_err(|e| e.to_string())?,
        (None, Some(k)) => {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(opts.seed);
            random_config(&mut rng, opts.n, k)
        }
        (None, None) => unreachable!("validated in parse_args"),
    };
    println!(
        "ring n = {}, k = {}, homes = {:?} (symmetry degree l = {})",
        init.ring_size(),
        init.agent_count(),
        init.homes(),
        init.symmetry_degree()
    );
    if opts.render {
        let before: Ring<FullKnowledge> =
            Ring::new(&init, |_| FullKnowledge::new(init.agent_count()));
        println!(
            "\ninitial configuration:\n{}",
            ringdeploy::render_ring(&before)
        );
    }
    if opts.explore {
        return explore(opts, &init);
    }
    let report = Deployment::of(&init)
        .algorithm(opts.algo)
        .run_preset(opts.schedule)
        .map_err(|e| e.to_string())?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::ToJson;
            println!("{}", report.to_json());
            return if report.succeeded() {
                Ok(())
            } else {
                Err(format!("deployment check failed: {:?}", report.check))
            };
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    println!("algorithm : {}", report.algorithm.name());
    println!("scheduler : {}", report.scheduler);
    println!(
        "verdict   : {}",
        if report.succeeded() {
            "uniform deployment reached"
        } else {
            "FAILED"
        }
    );
    println!("positions : {:?}", report.positions);
    println!(
        "moves     : {} total, {} max per agent",
        report.metrics.total_moves(),
        report.metrics.max_moves()
    );
    println!(
        "memory    : {} bits peak per agent",
        report.metrics.peak_memory_bits()
    );
    println!("messages  : {}", report.metrics.messages_sent());
    if let Some(rounds) = report.ideal_time {
        println!("ideal time: {rounds} rounds");
    }
    if !report.succeeded() {
        return Err(format!("deployment check failed: {:?}", report.check));
    }
    Ok(())
}

/// Exhaustively verifies the instance: every fair asynchronous schedule,
/// with rotation-symmetry reduction, via the `Explore` batch surface.
fn explore(opts: &Options, init: &InitialConfig) -> Result<(), String> {
    // The `Explore` batch surface enumerates Workload families; a CLI
    // instance has explicit homes, so it drives the Explorer directly.
    let report = explore_instance(opts, init)?;
    if opts.json {
        #[cfg(feature = "serde")]
        {
            use ringdeploy_json::{Json, ToJson};
            let json = Json::object([
                ("mode", "explore".to_json()),
                ("algorithm", opts.algo.to_json()),
                ("n", init.ring_size().to_json()),
                ("k", init.agent_count().to_json()),
                ("symmetry_degree", init.symmetry_degree().to_json()),
                ("report", report.to_json()),
            ]);
            println!("{json}");
            return Ok(());
        }
        #[cfg(not(feature = "serde"))]
        return Err("--json requires the `serde` feature (enabled by default)".to_string());
    }
    println!("algorithm : {}", opts.algo.name());
    println!("mode      : exhaustive (every fair schedule, rotation quotient)");
    println!("verdict   : verified — all schedules reach uniform deployment, no livelock");
    println!("states    : {} rotation classes visited", report.states);
    println!(
        "terminals : {} distinct final configurations",
        report.terminals
    );
    println!(
        "depth     : {} (longest DFS path / BFS layers)",
        report.max_depth_seen
    );
    println!("merges    : {} back/cross edges", report.merge_edges);
    println!(
        "frontier  : {} peak live states (deepest DFS path / widest BFS layer)",
        report.peak_frontier
    );
    Ok(())
}

fn explore_instance(
    opts: &Options,
    init: &InitialConfig,
) -> Result<ringdeploy::sim::explore::ExploreReport, String> {
    use ringdeploy::analysis::explore_one;
    use ringdeploy::sim::explore::{ExploreLimits, Explorer};

    let mut explorer = Explorer::new().limits(ExploreLimits::for_instance(
        init.ring_size(),
        init.agent_count(),
    ));
    if opts.explore_serial {
        explorer = explorer.threads(1);
    }
    explore_one(opts.algo, init, &explorer)
        .map_err(|e| format!("exhaustive verification FAILED: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
