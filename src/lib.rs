//! # ringdeploy — uniform deployment of mobile agents in asynchronous rings
//!
//! A complete, executable reproduction of
//! *"Uniform deployment of mobile agents in asynchronous rings"*
//! (Masahiro Shibata, Toshiya Mega, Fukuhito Ooshita, Hirotsugu Kakugawa,
//! Toshimitsu Masuzawa; PODC 2016, journal version JPDC 119:92–106, 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — the anonymous asynchronous unidirectional ring model
//!   (FIFO links, tokens, atomic actions, fair schedulers, ideal time);
//! * [`seq`] — distance sequences, minimal rotations, symmetry degree;
//! * [`core`] — the paper's algorithms: [`FullKnowledge`] (Alg. 1),
//!   [`LogSpace`] (Alg. 2+3), [`NoKnowledge`] (Alg. 4–6), the
//!   [`TerminatingEstimator`] strawman of Theorem 5 and the
//!   [`Rendezvous`] contrast baseline — plus the [`Deployment`] run
//!   builder;
//! * [`analysis`] — workload generators, the parallel [`Sweep`] batch
//!   API, statistics;
//! * [`embed`] — the §5 extension: Euler-tour ring embedding for trees and
//!   spanning-tree embedding for general graphs;
//! * [`service`] — `ringdeployd`, the long-lived deployment daemon with
//!   the deterministic result cache (`--serve` / `--connect` in the CLI).
//!
//! # Quickstart
//!
//! ```
//! use ringdeploy::{Algorithm, Deployment, InitialConfig, Schedule};
//!
//! // Eight agents crowded into one corner of a 40-node ring.
//! let init = InitialConfig::new(40, (0..8).collect())?;
//!
//! // Run the O(log n)-memory algorithm under a random fair schedule.
//! let report = Deployment::of(&init)
//!     .algorithm(Algorithm::LogSpace)
//!     .schedule(Schedule::Random(42))?
//!     .run()?;
//!
//! assert!(report.succeeded());                 // Definition 1 satisfied
//! assert!(report.metrics.total_moves() <= 4 * 8 * 40); // O(kn) moves
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Custom adversaries implement [`sim::Scheduler`] and plug into
//! [`Deployment::scheduler`]; lock-step ideal-time runs use
//! [`Deployment::synchronous`]; parameter studies cross-product
//! algorithms × workloads × schedules × seeds with [`Sweep`] and run the
//! cells in parallel. For machine-checked proofs on small instances,
//! [`Explore`] runs the symmetry-reduced exhaustive model checker
//! ([`sim::explore::Explorer`]) over **every** fair schedule of each
//! cell.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! paper-to-module map and the `experiments` binary for the reproduced
//! tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ringdeploy_analysis as analysis;
pub use ringdeploy_core as core;
pub use ringdeploy_embed as embed;
#[cfg(feature = "serde")]
pub use ringdeploy_json as json;
pub use ringdeploy_seq as seq;
#[cfg(feature = "serde")]
pub use ringdeploy_service as service;
pub use ringdeploy_sim as sim;
pub use ringdeploy_vis as vis;

pub use ringdeploy_analysis::{
    Adversary, BoundCertificate, Certify, CertifyRow, Explore, ExploreRow, Objective, Sweep,
    SweepRow, Workload, WorstCase,
};
pub use ringdeploy_core::{
    Algorithm, DeployError, DeployReport, Deployment, Family, FullKnowledge, LogSpace, NoKnowledge,
    PartialGathering, PhaseMetric, ProblemFamily, Rendezvous, RendezvousVerdict, Schedule,
    SpacingPlan, TerminatingEstimator,
};
pub use ringdeploy_seq::DistanceSeq;
pub use ringdeploy_sim::{
    is_uniform_spacing, render_ring, AgentId, FaultPlan, InitialConfig, Metrics, Ring, RunLimits,
    Scheduler,
};
