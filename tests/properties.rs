//! Property-based tests: for random instances, all three algorithms reach
//! uniform deployment and respect the paper's bounds.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy::analysis::random_config;
use ringdeploy::{is_uniform_spacing, Algorithm, DeployReport, Deployment, Schedule};

/// Runs one deployment through the builder (presets only, asynchronous).
fn run_deploy(
    init: &ringdeploy::InitialConfig,
    algo: Algorithm,
    schedule: Schedule,
) -> DeployReport {
    Deployment::of(init)
        .algorithm(algo)
        .schedule(schedule)
        .expect("asynchronous preset")
        .run()
        .expect("run completes")
}

/// Strategy: ring size, agent count, placement seed and schedule seed.
fn instance() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (4usize..80)
        .prop_flat_map(|n| (Just(n), 2usize..=n.min(16)))
        .prop_flat_map(|(n, k)| (Just(n), Just(k), any::<u64>(), any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algo1_deploys_uniformly((n, k, pseed, sseed) in instance()) {
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        let report = run_deploy(&init, Algorithm::FullKnowledge, Schedule::Random(sseed));
        prop_assert!(report.succeeded(), "{:?}", report.check);
        prop_assert!(is_uniform_spacing(n, &report.positions));
        prop_assert!(report.metrics.total_moves() <= 3 * (k * n) as u64);
        prop_assert!(report.metrics.max_moves() <= 3 * n as u64);
    }

    #[test]
    fn algo2_deploys_uniformly((n, k, pseed, sseed) in instance()) {
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        let report = run_deploy(&init, Algorithm::LogSpace, Schedule::Random(sseed));
        prop_assert!(report.succeeded(), "{:?}", report.check);
        prop_assert!(is_uniform_spacing(n, &report.positions));
        // Selection ≤ 2kn + deployment ≤ kn extra (constant slack for ceil).
        prop_assert!(report.metrics.total_moves() <= 4 * (k * n) as u64);
    }

    #[test]
    fn relaxed_deploys_uniformly((n, k, pseed, sseed) in instance()) {
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        let l = init.symmetry_degree();
        let report = run_deploy(&init, Algorithm::Relaxed, Schedule::Random(sseed));
        prop_assert!(report.succeeded(), "{:?}", report.check);
        prop_assert!(is_uniform_spacing(n, &report.positions));
        // Lemma 5: each agent moves at most 14·(n/l).
        prop_assert!(report.metrics.max_moves() <= 14 * (n / l) as u64);
    }

    /// Deterministic final placement: Algorithm 1 and the relaxed algorithm
    /// land each agent on a schedule-independent node.
    #[test]
    fn positions_are_deterministic((n, k, pseed, sseed) in instance()) {
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        for algo in [Algorithm::FullKnowledge, Algorithm::Relaxed] {
            let a = run_deploy(&init, algo, Schedule::Random(sseed));
            let b = run_deploy(&init, algo, Schedule::RoundRobin);
            prop_assert_eq!(&a.positions, &b.positions);
        }
    }

    /// Token conservation: exactly one token per home node, none elsewhere,
    /// regardless of algorithm and schedule.
    #[test]
    fn tokens_land_exactly_on_homes((n, k, pseed, sseed) in instance()) {
        use ringdeploy::sim::scheduler::Random;
        use ringdeploy::sim::RunLimits;
        use ringdeploy::{FullKnowledge, Ring};
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        let mut ring = Ring::new(&init, |_| FullKnowledge::new(k));
        ring.run(&mut Random::seeded(sseed), RunLimits::for_instance(n, k))
            .expect("run");
        let tokens = ring.tokens();
        let total: u32 = tokens.iter().sum();
        prop_assert_eq!(total as usize, k);
        for (node, &t) in tokens.iter().enumerate() {
            let is_home = init.homes().contains(&node);
            prop_assert_eq!(t == 1, is_home, "node {} token {}", node, t);
        }
    }

    /// The relaxed algorithm's estimates are consistent: every agent ends
    /// with the same (n', k'), equal to the fundamental ring.
    #[test]
    fn relaxed_estimates_converge((n, k, pseed, sseed) in instance()) {
        use ringdeploy::sim::scheduler::Random;
        use ringdeploy::sim::RunLimits;
        use ringdeploy::{NoKnowledge, Ring};
        let mut rng = SmallRng::seed_from_u64(pseed);
        let init = random_config(&mut rng, n, k);
        let l = init.symmetry_degree();
        let mut ring = Ring::new(&init, |_| NoKnowledge::new());
        ring.run(&mut Random::seeded(sseed), RunLimits::for_instance(n, k))
            .expect("run");
        for i in 0..k {
            let est = ring
                .behavior(ringdeploy::sim::AgentId(i))
                .estimate()
                .expect("estimated");
            prop_assert_eq!(est, ((n / l) as u64, (k / l) as u64),
                "agent {} estimate {:?}", i, est);
        }
    }
}
