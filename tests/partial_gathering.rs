//! End-to-end validation of the g-partial-gathering family
//! (arXiv:1505.06596): the first problem family other than uniform
//! deployment to ride the `ProblemFamily` trait through the entire
//! verification stack. Every harness below reaches the family through
//! the same generic surfaces as the uniform families — `Deployment`,
//! `explore_one`, `worst_case_one`, `certify_one` — with zero
//! gathering-specific plumbing above `ringdeploy-core`:
//!
//! * **exhaustive coverage** — the terminal set of the symmetry-reduced
//!   model checker contains the terminal of every sampled random run;
//! * **adversarial dominance** — the exact worst case is ≥ the maximum
//!   over the deterministic presets plus a 32-seed random sweep, and
//!   the rotation-quotiented search agrees with the plain one;
//! * **Θ(gn) move bound** — the recorded `c·g·n` certificate holds at
//!   the adversarial tier on every instance with `n ≤ 16`;
//! * **impossibility pin** — uniform homes have `k/l = 1`, so `g = 2`
//!   is unsatisfiable and the check names the undersized group;
//! * **oracle differential** — the consecutive-arc DP oracle matches a
//!   set-partition brute force and lower-bounds every distributed run.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy::analysis::certify::{certify_one, CertifySettings, EvidenceTier};
use ringdeploy::analysis::{
    explore_one, gathering_oracle_brute_force, gathering_oracle_moves, random_config,
    worst_case_one,
};
use ringdeploy::sim::adversary::{Adversary, Objective};
use ringdeploy::sim::canonical::canonical_fingerprint;
use ringdeploy::sim::explore::{ExploreLimits, Explorer, SymmetryMode};
use ringdeploy::sim::{DeploymentCheck, Ring, RunLimits};
use ringdeploy::{Algorithm, Deployment, InitialConfig, PartialGathering, Schedule};

/// Satisfiable `g = 2` instances: `k/l ≥ 2` everywhere, `n ≤ 16` so
/// the adversarial tier stays exhaustive.
const INSTANCES: &[(usize, &[usize])] = &[
    (8, &[0, 1, 4, 5]),
    (8, &[0, 1, 2]),
    (12, &[0, 1, 2, 3]),
    (12, &[0, 2, 6, 8]),
    (16, &[0, 1, 8, 9]),
];

fn schedules(k: usize) -> Vec<Schedule> {
    let mut schedules: Vec<Schedule> = vec![Schedule::RoundRobin, Schedule::OneAtATime];
    schedules.extend((0..k).map(Schedule::DelayAgent));
    schedules.extend((0..32).map(Schedule::Random));
    schedules
}

#[test]
fn exhaustive_terminal_set_covers_every_sampled_run() {
    let family = Algorithm::partial_gathering(2);
    for &(n, homes) in INSTANCES {
        let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
        let k = init.agent_count();
        let explorer = Explorer::new()
            .limits(ExploreLimits::for_instance(n, k))
            .symmetry(SymmetryMode::Rotation)
            .threads(1);
        let explored = explore_one(family, &init, &explorer)
            .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: explore failed: {e}"));
        assert!(explored.terminals >= 1);
        for schedule in schedules(k) {
            let mut ring = Ring::new(&init, |_| PartialGathering::new(k));
            let mut scheduler = schedule.into_scheduler().expect("asynchronous preset");
            let outcome = ring
                .run(&mut *scheduler, RunLimits::default())
                .unwrap_or_else(|e| panic!("n={n} {schedule}: run failed: {e}"));
            assert!(outcome.quiescent, "n={n} {schedule}: run must terminate");
            assert!(
                explored.contains_terminal(canonical_fingerprint(&ring)),
                "n={n} homes={homes:?} {schedule}: sampled terminal missing from the \
                 exhaustive terminal set"
            );
        }
    }
}

#[test]
fn adversarial_worst_dominates_every_sampled_schedule() {
    let family = Algorithm::partial_gathering(2);
    for &(n, homes) in INSTANCES {
        let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
        let k = init.agent_count();
        let mut sampled = [0u64; 3];
        for schedule in schedules(k) {
            let report = Deployment::of(&init)
                .algorithm(family)
                .run_preset(schedule)
                .unwrap_or_else(|e| panic!("n={n} {schedule}: {e}"));
            assert!(report.succeeded(), "n={n} homes={homes:?} {schedule}");
            let values = [
                report.metrics.total_moves(),
                report.steps,
                report.metrics.peak_memory_bits() as u64,
            ];
            for (slot, value) in sampled.iter_mut().zip(values) {
                *slot = (*slot).max(value);
            }
        }
        let limits = ExploreLimits::for_instance(n, k);
        for (objective, sampled_max) in Objective::ALL.into_iter().zip(sampled) {
            let rotation = worst_case_one(
                family,
                &init,
                &Adversary::new()
                    .limits(limits)
                    .symmetry(SymmetryMode::Rotation),
                objective,
            )
            .unwrap_or_else(|e| panic!("n={n} {objective}: {e}"));
            let plain = worst_case_one(
                family,
                &init,
                &Adversary::new().limits(limits).symmetry(SymmetryMode::Off),
                objective,
            )
            .unwrap_or_else(|e| panic!("n={n} {objective} plain: {e}"));
            assert!(
                rotation.value >= sampled_max,
                "{objective} n={n} homes={homes:?}: adversarial max {} below sampled {}",
                rotation.value,
                sampled_max
            );
            assert_eq!(
                rotation.value, plain.value,
                "{objective} n={n} homes={homes:?}: quotiented and plain searches disagree"
            );
        }
    }
}

#[test]
fn theta_gn_move_bound_certifies_adversarially() {
    for g in [2usize, 3] {
        let family = Algorithm::partial_gathering(g);
        for &(n, homes) in INSTANCES {
            let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
            if init.agent_count() / init.symmetry_degree() < g {
                continue; // unsatisfiable for this g; pinned separately below
            }
            let cert = certify_one(
                family,
                &init,
                Objective::TotalMoves,
                EvidenceTier::Adversarial,
                &CertifySettings::default(),
            )
            .unwrap_or_else(|e| panic!("g={g} n={n} homes={homes:?}: certify failed: {e}"));
            assert_eq!(cert.bound.formula, "c*g*n", "the Θ(gn) shape is recorded");
            assert!(
                cert.holds(),
                "g={g} n={n} homes={homes:?}: worst {} exceeds bound {}",
                cert.worst_value,
                cert.bound.value
            );
        }
    }
}

#[test]
fn uniform_homes_cannot_gather_pairs() {
    // Fully symmetric homes: l = k, every agent's census view is the
    // same minimal rotation, so all k elect themselves leader and halt
    // at home in groups of 1 < g = 2. The predicate must name the
    // undersized group rather than merely failing.
    let init = InitialConfig::new(12, vec![0, 3, 6, 9]).expect("valid");
    let report = Deployment::of(&init)
        .algorithm(Algorithm::partial_gathering(2))
        .run_preset(Schedule::RoundRobin)
        .expect("the run itself terminates");
    assert!(!report.succeeded());
    assert!(
        matches!(
            report.check,
            DeploymentCheck::UndersizedGroup {
                count: 1,
                required: 2,
                ..
            }
        ),
        "expected an undersized group of 1, got {:?}",
        report.check
    );
}

#[test]
fn oracle_matches_brute_force_on_random_instances() {
    let mut rng = SmallRng::seed_from_u64(11);
    for g in [1usize, 2, 3] {
        for case in 0..12 {
            let n = 6 + (case % 5);
            let k = 2 + (case % 3);
            let init = random_config(&mut rng, n, k);
            assert_eq!(
                gathering_oracle_moves(&init, g),
                gathering_oracle_brute_force(&init, g),
                "g={g} n={n} homes={:?}: DP and set-partition brute force disagree",
                init.homes()
            );
        }
    }
}

#[test]
fn oracle_lower_bounds_every_distributed_run() {
    let family = Algorithm::partial_gathering(2);
    for &(n, homes) in INSTANCES {
        let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
        let oracle = gathering_oracle_moves(&init, 2)
            .unwrap_or_else(|| panic!("n={n} homes={homes:?}: satisfiable instance"));
        for schedule in schedules(init.agent_count()) {
            let report = Deployment::of(&init)
                .algorithm(family)
                .run_preset(schedule)
                .unwrap_or_else(|e| panic!("n={n} {schedule}: {e}"));
            assert!(
                report.metrics.total_moves() >= oracle,
                "n={n} homes={homes:?} {schedule}: a distributed run beat the offline \
                 optimum ({} < {oracle})",
                report.metrics.total_moves()
            );
        }
    }
}
