//! Differential validation of the branch-and-bound worst-case search:
//!
//! * **dominance over sampling** — on every exhaustive-tier instance the
//!   adversarial exact maximum is ≥ the maximum over a 64-seed random
//!   sweep (plus the deterministic adversary presets);
//! * **quotient soundness** — the rotation- and dihedral-quotiented
//!   searches (with the admissible move-bound prune enabled, the
//!   production default) report exactly the value of the unpruned plain
//!   search (`SymmetryMode::Off`), which enumerates every reachable
//!   concrete configuration;
//! * **full coverage** — with the bound prune disabled, the search's
//!   `distinct_states` equals the exhaustive explorer's `states` in the
//!   same mode (all three modes): the maximum really is taken over the
//!   explorer's *entire* reachable state space, not a subset;
//! * **independent recomputation** — a reference algorithm of a
//!   different shape (top-down dynamic programming on the
//!   *maximum-remaining* value per plain fingerprint, clone-based
//!   stepping, no cost dominance anywhere) reproduces the same maxima.

use std::collections::HashMap;

use ringdeploy::analysis::explore_one;
use ringdeploy::sim::adversary::{Adversary, AdversaryError, Objective, WorstCase};
use ringdeploy::sim::canonical::plain_fingerprint;
use ringdeploy::sim::explore::{ExploreLimits, Explorer, SymmetryMode};
use ringdeploy::sim::{Behavior, Ring};
use ringdeploy::{
    Algorithm, Deployment, FullKnowledge, InitialConfig, LogSpace, NoKnowledge, Schedule,
};

/// The exhaustive-tier instances: one symmetric and one clustered per
/// size, small enough that the plain (unquotiented) search still
/// completes for all three families.
const INSTANCES: &[(usize, &[usize])] = &[(8, &[0, 4]), (8, &[0, 1, 2]), (12, &[0, 3, 6, 9])];

fn try_adversary_value(
    algorithm: Algorithm,
    init: &InitialConfig,
    symmetry: SymmetryMode,
    objective: Objective,
    prune: bool,
) -> Result<WorstCase, AdversaryError> {
    let adversary = Adversary::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .symmetry(symmetry)
        .bound_prune(prune);
    ringdeploy::analysis::worst_case_one(algorithm, init, &adversary, objective)
}

fn adversary_value(
    algorithm: Algorithm,
    init: &InitialConfig,
    symmetry: SymmetryMode,
    objective: Objective,
    prune: bool,
) -> WorstCase {
    try_adversary_value(algorithm, init, symmetry, objective, prune)
        .unwrap_or_else(|e| panic!("{algorithm} {objective} {symmetry:?}: {e}"))
}

fn objective_of_report(objective: Objective, report: &ringdeploy::DeployReport) -> u64 {
    match objective {
        Objective::TotalMoves => report.metrics.total_moves(),
        Objective::TotalActivations => report.steps,
        Objective::PeakMemoryBits => report.metrics.peak_memory_bits() as u64,
    }
}

#[test]
fn adversarial_max_dominates_random_sweeps_and_equals_plain_search() {
    for &(n, homes) in INSTANCES {
        let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
        for algorithm in Algorithm::ALL {
            // One sampled maximum per objective over 64 random seeds plus
            // the deterministic presets.
            let mut sampled = [0u64; 3];
            let mut schedules: Vec<Schedule> = vec![Schedule::RoundRobin, Schedule::OneAtATime];
            schedules.extend((0..init.agent_count()).map(Schedule::DelayAgent));
            schedules.extend((0..64).map(Schedule::Random));
            for schedule in schedules {
                let report = Deployment::of(&init)
                    .algorithm(algorithm)
                    .run_preset(schedule)
                    .unwrap_or_else(|e| panic!("{algorithm} n={n}: sweep run failed: {e}"));
                for (slot, objective) in sampled.iter_mut().zip(Objective::ALL) {
                    *slot = (*slot).max(objective_of_report(objective, &report));
                }
            }
            for (objective, sampled_max) in Objective::ALL.into_iter().zip(sampled) {
                // Pruned quotiented searches (the production default)
                // against the fully-enumerated plain baseline: the
                // symmetry fold *and* the admissible move-bound prune
                // must both be value-preserving on the real algorithms.
                let rotation =
                    adversary_value(algorithm, &init, SymmetryMode::Rotation, objective, true);
                let plain = adversary_value(algorithm, &init, SymmetryMode::Off, objective, false);
                assert!(
                    rotation.value >= sampled_max,
                    "{algorithm} {objective} n={n} homes={homes:?}: adversarial max {} below \
                     a sampled schedule's {}",
                    rotation.value,
                    sampled_max
                );
                assert_eq!(
                    rotation.value, plain.value,
                    "{algorithm} {objective} n={n} homes={homes:?}: quotiented and plain \
                     searches disagree"
                );
                // The dihedral fold is not universally sound (reflection
                // is not an automorphism of the *directed* ring, see
                // DESIGN.md §0.11): on reflection-symmetric instances it
                // can merge a reachable state with its distinct mirror
                // and report a spurious quotient cycle. A detected cycle
                // is the fold declaring itself inapplicable — skip; but
                // whenever the search *completes*, its value must be
                // exact.
                match try_adversary_value(algorithm, &init, SymmetryMode::Dihedral, objective, true)
                {
                    Ok(dihedral) => assert_eq!(
                        dihedral.value, plain.value,
                        "{algorithm} {objective} n={n} homes={homes:?}: dihedral quotient \
                         and plain searches disagree"
                    ),
                    Err(AdversaryError::CycleDetected { .. }) => {}
                    Err(e) => panic!("{algorithm} {objective} n={n} Dihedral: {e}"),
                }
            }
        }
    }
}

#[test]
fn search_covers_exactly_the_explorers_reachable_space() {
    for &(n, homes) in INSTANCES {
        let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
        for algorithm in Algorithm::ALL {
            for symmetry in [
                SymmetryMode::Off,
                SymmetryMode::Rotation,
                SymmetryMode::Dihedral,
            ] {
                let explorer = Explorer::new()
                    .limits(ExploreLimits::for_instance(n, init.agent_count()))
                    .symmetry(symmetry)
                    .threads(1);
                let explored = match explore_one(algorithm, &init, &explorer) {
                    Ok(explored) => explored,
                    // The dihedral fold can merge a state with its
                    // distinct mirror and report a spurious quotient
                    // livelock — the fold declaring itself inapplicable
                    // to this instance (DESIGN.md §0.11). Skip; the
                    // adversary detects the same cycle.
                    Err(e) if symmetry == SymmetryMode::Dihedral => {
                        let err = try_adversary_value(
                            algorithm,
                            &init,
                            symmetry,
                            Objective::TotalMoves,
                            false,
                        )
                        .expect_err("explorer saw a quotient cycle, so must the adversary");
                        assert!(
                            matches!(err, AdversaryError::CycleDetected { .. }),
                            "{algorithm} n={n} {symmetry:?}: explorer failed ({e}) but the \
                             adversary failed differently: {err}"
                        );
                        continue;
                    }
                    Err(e) => panic!("{algorithm} n={n} {symmetry:?}: {e}"),
                };
                // The objective does not change reachability; one check
                // per objective pins that the unpruned search neither
                // skips nor invents states. The bound prune is turned
                // off here on purpose: cutting subtrees is its entire
                // job, so coverage is only exact without it.
                for objective in Objective::ALL {
                    let worst = adversary_value(algorithm, &init, symmetry, objective, false);
                    assert_eq!(
                        worst.distinct_states, explored.states,
                        "{algorithm} {objective} n={n} homes={homes:?} {symmetry:?}: \
                         worst-case search must cover the explorer's reachable space exactly"
                    );
                    assert_eq!(worst.bound_prunes, 0, "prune was disabled");
                }
                // With the prune enabled the space can only shrink, and
                // never below the terminal-bearing core.
                let pruned =
                    adversary_value(algorithm, &init, symmetry, Objective::TotalMoves, true);
                assert!(
                    pruned.distinct_states <= explored.states,
                    "{algorithm} n={n} homes={homes:?} {symmetry:?}: pruning must not \
                     invent states"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Independent reference: top-down DP on the maximum-remaining value.
// ---------------------------------------------------------------------

/// Maximum *additional* objective value attainable from `ring` to
/// quiescence — memoised per plain fingerprint, clone-based stepping.
/// For the peak objective this computes the maximum memory-bits
/// observation from here on (the final watermark is then the max of the
/// start watermark and this).
fn max_remaining<B>(ring: &Ring<B>, objective: Objective, memo: &mut HashMap<u64, u64>) -> u64
where
    B: Behavior + Clone + std::hash::Hash,
    B::Message: Clone + std::hash::Hash,
{
    let fp = plain_fingerprint(ring);
    if let Some(&cached) = memo.get(&fp) {
        return cached;
    }
    let mut best = 0u64;
    // Index loop: the enabled slice is borrowed from `ring`.
    for i in 0..ring.enabled_activations().len() {
        let act = ring.enabled_activations()[i];
        let mut child = ring.clone();
        child.step(act);
        let gain = match objective {
            Objective::TotalMoves => child.metrics().total_moves() - ring.metrics().total_moves(),
            Objective::TotalActivations => 1,
            // The engine observes the acting agent's memory right after
            // its local computation; that observation is this step's
            // contribution to the watermark.
            Objective::PeakMemoryBits => child.behavior(act.agent).memory_bits() as u64,
        };
        let rest = max_remaining(&child, objective, memo);
        let total = match objective {
            Objective::PeakMemoryBits => gain.max(rest),
            _ => gain + rest,
        };
        best = best.max(total);
    }
    memo.insert(fp, best);
    best
}

/// The DP reference's answer for one family ring: the maximum-remaining
/// value, combined with the start watermark for the peak objective.
fn dp_reference<B>(ring: &Ring<B>, objective: Objective) -> u64
where
    B: Behavior + Clone + std::hash::Hash,
    B::Message: Clone + std::hash::Hash,
{
    let rem = max_remaining(ring, objective, &mut HashMap::new());
    match objective {
        Objective::PeakMemoryBits => (ring.metrics().peak_memory_bits() as u64).max(rem),
        _ => rem,
    }
}

#[test]
fn independent_dp_reference_reproduces_the_maxima() {
    // Small instances: the DP clones a ring per edge, so keep the spaces
    // in the hundreds-to-thousands of states.
    for (n, homes) in [(6usize, vec![0usize, 3]), (6, vec![0, 1]), (8, vec![0, 4])] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let k = init.agent_count();
        for algorithm in Algorithm::ALL {
            for objective in Objective::ALL {
                let worst =
                    adversary_value(algorithm, &init, SymmetryMode::Rotation, objective, true);
                let reference = if algorithm == Algorithm::FullKnowledge {
                    dp_reference(&Ring::new(&init, |_| FullKnowledge::new(k)), objective)
                } else if algorithm == Algorithm::LogSpace {
                    dp_reference(&Ring::new(&init, |_| LogSpace::new(k)), objective)
                } else {
                    dp_reference(&Ring::new(&init, |_| NoKnowledge::new()), objective)
                };
                assert_eq!(
                    worst.value, reference,
                    "{algorithm} {objective} n={n} homes={homes:?}: branch-and-bound and \
                     DP reference disagree"
                );
            }
        }
    }
}
