//! Fault-schedule witness replay: the adversarial worst case of a
//! *faulty* instance must be independently reproducible, exactly like
//! the fault-free round trips in `adversary_witness.rs`. Under a
//! [`FaultPlan`] the branch-and-bound's move set grows — edge-outage
//! moves are adversary-controllable picks and crash-stops fire
//! deterministically inside the steps of the crashing agent — and the
//! returned witness records the complete schedule including any fault
//! moves. Replaying it through the stock [`Replay`] scheduler on a
//! fresh ring carrying the same plan must reach quiescence with exactly
//! the claimed objective value and terminal canonical fingerprint.
//!
//! Also pinned: granting the adversary an edge-outage budget can only
//! raise (never lower) the exact worst case — the fault-free schedule
//! space is a subset of the faulty one.

use ringdeploy::sim::adversary::{Adversary, Objective, WorstCase};
use ringdeploy::sim::canonical::canonical_fingerprint;
use ringdeploy::sim::explore::ExploreLimits;
use ringdeploy::sim::scheduler::Replay;
use ringdeploy::sim::{Behavior, Ring, RunLimits};
use ringdeploy::{AgentId, FaultPlan, FullKnowledge, InitialConfig, LogSpace, NoKnowledge};

/// Searches the worst case of `init` under `plan` for one objective and
/// replays the witness on a fresh ring carrying the same plan.
fn worst_and_replay<B>(
    init: &InitialConfig,
    plan: &FaultPlan,
    make: &dyn Fn() -> B,
    objective: Objective,
    label: &str,
) -> WorstCase
where
    B: Behavior + Clone + std::hash::Hash,
    B::Message: Clone + std::hash::Hash,
{
    let faulty = init.clone().with_faults(plan.clone());
    let search_ring = Ring::new(&faulty, |_| make());
    let worst = Adversary::new()
        .limits(ExploreLimits::for_instance(
            init.ring_size(),
            init.agent_count(),
        ))
        .run(&search_ring, objective)
        .unwrap_or_else(|e| panic!("{label} {objective}: search failed: {e}"));

    let mut replay_ring = Ring::new(&faulty, |_| make());
    let mut replay = Replay::new(worst.witness.clone());
    let outcome = replay_ring
        .run(&mut replay, RunLimits::default())
        .unwrap_or_else(|e| panic!("{label} {objective}: witness does not replay: {e}"));
    assert!(
        outcome.quiescent,
        "{label} {objective}: witness must end at a terminal configuration"
    );
    assert_eq!(
        replay.remaining(),
        0,
        "{label} {objective}: witness must be consumed exactly"
    );
    let replayed_value = match objective {
        Objective::TotalMoves => outcome.metrics.total_moves(),
        Objective::TotalActivations => outcome.steps,
        Objective::PeakMemoryBits => outcome.metrics.peak_memory_bits() as u64,
    };
    assert_eq!(
        replayed_value, worst.value,
        "{label} {objective}: replayed objective value diverges from the claim"
    );
    assert_eq!(
        canonical_fingerprint(&replay_ring),
        worst.terminal_fingerprint,
        "{label} {objective}: replayed terminal fingerprint diverges from the claim"
    );
    worst
}

/// Crash-stop plans: the worst case over every fair schedule of the
/// depleted execution replays bit-identically, for all three plain
/// deployment families.
#[test]
fn crash_fault_witnesses_replay_bit_identically() {
    let plan = FaultPlan::none().with_crash(AgentId(0), 2);
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    for objective in Objective::ALL {
        worst_and_replay(
            &init,
            &plan,
            &|| FullKnowledge::new(2),
            objective,
            "algo1 crash=0@2",
        );
        worst_and_replay(
            &init,
            &plan,
            &|| LogSpace::new(2),
            objective,
            "algo2 crash=0@2",
        );
        worst_and_replay(
            &init,
            &plan,
            &NoKnowledge::new,
            objective,
            "relaxed crash=0@2",
        );
    }
}

/// Dynamic-edge plans: the witness may interleave `Down`/`Restore`
/// picks with agent activations; the round trip must still be exact,
/// and the faulty worst case dominates the fault-free one.
#[test]
fn edge_fault_witnesses_replay_and_dominate_fault_free() {
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    let plan = FaultPlan::none().with_edge_outages(1);
    for objective in [Objective::TotalMoves, Objective::TotalActivations] {
        let baseline = worst_and_replay(
            &init,
            &FaultPlan::none(),
            &|| FullKnowledge::new(2),
            objective,
            "algo1 fault-free",
        );
        let faulty = worst_and_replay(
            &init,
            &plan,
            &|| FullKnowledge::new(2),
            objective,
            "algo1 dynamic-edge:1",
        );
        assert!(
            faulty.value >= baseline.value,
            "{objective}: an edge-outage budget strictly widens the schedule space \
             (faulty worst {} < fault-free worst {})",
            faulty.value,
            baseline.value
        );
    }
}

/// Combined plans — a crash *and* an outage budget — replay too; this is
/// the acceptance-criterion instance (a replayable worst-case fault
/// witness for at least one family).
#[test]
fn combined_fault_witness_replays() {
    let init = InitialConfig::new(6, vec![0, 2]).expect("valid");
    let plan = FaultPlan::none()
        .with_crash(AgentId(1), 1)
        .with_edge_outages(1);
    let worst = worst_and_replay(
        &init,
        &plan,
        &|| FullKnowledge::new(2),
        Objective::TotalMoves,
        "algo1 crash=1@1,dynamic-edge:1",
    );
    assert!(
        worst.witness.len() as u64 >= worst.value,
        "every move costs at least one scheduler pick"
    );
}
