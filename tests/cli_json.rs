//! CLI `--json` schema round-trip coverage: every JSON report the
//! `ringdeploy` binary emits — deploy, explore, adversary and certify —
//! must parse back through `ringdeploy-json::FromJson` into the typed
//! report it came from, and the field-name sets are pinned so the JSON
//! surface cannot silently drift (downstream consumers parse these by
//! key).

use std::process::Command;

use ringdeploy::json::{FromJson, Json};
use ringdeploy::sim::adversary::WorstCase;
use ringdeploy::sim::explore::ExploreReport;
use ringdeploy::sim::scheduler::Replay;
use ringdeploy::sim::{Ring, RunLimits};
use ringdeploy::{Algorithm, BoundCertificate, DeployReport, FullKnowledge, InitialConfig};

/// Runs the CLI binary and returns the parsed JSON report line (the
/// human "ring n = …" banner precedes it).
fn run_cli(args: &[&str], expect_success: bool) -> Json {
    let output = Command::new(env!("CARGO_BIN_EXE_ringdeploy"))
        .args(args)
        .output()
        .expect("spawn ringdeploy");
    assert_eq!(
        output.status.success(),
        expect_success,
        "ringdeploy {args:?}: status {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let json_line = stdout
        .lines()
        .find(|line| line.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON line in output:\n{stdout}"));
    Json::parse(json_line).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json_line}"))
}

/// The exact key set of a JSON object — the schema pin.
fn keys(json: &Json) -> Vec<String> {
    let Json::Object(map) = json else {
        panic!("expected object, found {json}");
    };
    map.keys().cloned().collect()
}

fn field<'a>(json: &'a Json, name: &str) -> &'a Json {
    let Json::Object(map) = json else {
        panic!("expected object, found {json}");
    };
    map.get(name)
        .unwrap_or_else(|| panic!("missing field `{name}` in {json}"))
}

#[test]
fn deploy_report_round_trips_with_pinned_fields() {
    let json = run_cli(
        &[
            "--n", "12", "--homes", "0,1,2,3", "--algo", "algo2", "--json",
        ],
        true,
    );
    assert_eq!(
        keys(&json),
        [
            "algorithm",
            "check",
            "ideal_time",
            "instance_fingerprint",
            "k",
            "metrics",
            "n",
            "phases",
            "positions",
            "scheduler",
            "steps",
            "symmetry_degree",
        ],
        "DeployReport JSON schema drifted"
    );
    assert_eq!(
        keys(field(&json, "metrics")),
        [
            "activations",
            "message_receipts",
            "messages_sent",
            "moves",
            "peak_memory_bits",
            "token_releases",
        ],
        "Metrics JSON schema drifted"
    );
    let report = DeployReport::from_json(&json).expect("DeployReport decodes");
    assert_eq!(report.algorithm, Algorithm::LogSpace);
    assert_eq!((report.n, report.k), (12, 4));
    assert!(report.succeeded());
    assert_eq!(report.steps, report.metrics.total_activations());
}

#[test]
fn explore_report_round_trips_with_pinned_fields() {
    let json = run_cli(
        &[
            "--n",
            "8",
            "--homes",
            "0,4",
            "--algo",
            "algo1",
            "--explore",
            "--json",
        ],
        true,
    );
    assert_eq!(
        keys(&json),
        ["algorithm", "k", "mode", "n", "report", "symmetry_degree"],
        "explore envelope schema drifted"
    );
    assert_eq!(field(&json, "mode"), &Json::String("explore".into()));
    assert_eq!(
        keys(field(&json, "report")),
        [
            "instance_fingerprint",
            "max_depth_seen",
            "merge_edges",
            "peak_frontier",
            "states",
            "terminals"
        ],
        "ExploreReport JSON schema drifted"
    );
    let report = ExploreReport::from_json(field(&json, "report")).expect("ExploreReport decodes");
    assert!(report.states > report.terminals);
    assert!(report.terminals >= 1);
}

#[test]
fn adversary_report_round_trips_and_the_decoded_witness_replays() {
    let json = run_cli(
        &[
            "--n",
            "6",
            "--homes",
            "0,3",
            "--algo",
            "algo1",
            "--adversary",
            "moves",
            "--json",
        ],
        true,
    );
    assert_eq!(
        keys(&json),
        ["algorithm", "k", "mode", "n", "report", "symmetry_degree"],
        "adversary envelope schema drifted"
    );
    assert_eq!(field(&json, "mode"), &Json::String("adversary".into()));
    assert_eq!(
        keys(field(&json, "report")),
        [
            "bound_prunes",
            "distinct_states",
            "dominance_prunes",
            "expansions",
            "max_depth_seen",
            "objective",
            "terminal_fingerprint",
            "terminal_hits",
            "value",
            "witness",
        ],
        "WorstCase JSON schema drifted"
    );
    let worst = WorstCase::from_json(field(&json, "report")).expect("WorstCase decodes");
    // The decoded witness is a complete, replayable schedule: drive a
    // fresh ring with it and reproduce the claimed worst case — the
    // JSON surface carries real evidence, not a summary.
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(2));
    let outcome = ring
        .run(
            &mut Replay::new(worst.witness.clone()),
            RunLimits::default(),
        )
        .expect("decoded witness replays");
    assert!(outcome.quiescent);
    assert_eq!(outcome.metrics.total_moves(), worst.value);
}

#[test]
fn certify_report_round_trips_with_pinned_fields() {
    let json = run_cli(
        &[
            "--n",
            "8",
            "--homes",
            "0,4",
            "--algo",
            "relaxed",
            "--certify",
            "--json",
        ],
        true,
    );
    assert_eq!(
        keys(&json),
        [
            "algorithm",
            "certificates",
            "k",
            "mode",
            "n",
            "symmetry_degree",
            "tier"
        ],
        "certify envelope schema drifted"
    );
    assert_eq!(field(&json, "mode"), &Json::String("certify".into()));
    let certificates = field(&json, "certificates")
        .as_array()
        .expect("certificates is an array");
    assert_eq!(certificates.len(), 3, "one certificate per objective");
    for cert_json in certificates {
        assert_eq!(
            keys(cert_json),
            [
                "algorithm",
                "bound",
                "competitive_ratio",
                "holds",
                "instance_fingerprint",
                "k",
                "n",
                "objective",
                "oracle_moves",
                "search",
                "symmetry_degree",
                "terminal_fingerprint",
                "tier",
                "witness",
                "worst_value",
            ],
            "BoundCertificate JSON schema drifted"
        );
        assert_eq!(
            keys(field(cert_json, "bound")),
            ["constant", "formula", "value"],
            "PaperBound JSON schema drifted"
        );
        let cert = BoundCertificate::from_json(cert_json).expect("BoundCertificate decodes");
        assert_eq!(cert.algorithm, Algorithm::Relaxed);
        assert!(cert.holds(), "{}: bound violated", cert.objective);
        assert!(cert.witness.is_some(), "adversarial tier carries evidence");
        // The emitted `holds` flag must agree with the decoded
        // certificate's own arithmetic.
        assert_eq!(field(cert_json, "holds"), &Json::Bool(cert.holds()));
    }
}

/// Success-path pin for the CI gate: on a real instance every emitted
/// `holds` flag is true and the process exits 0. The *violation* half
/// of the gate — non-zero exit when any certificate fails — cannot be
/// reached from the CLI with a real instance (no recorded bound is
/// violated; that is what the CI `adversary` job asserts), so it is
/// covered by the `violation_error_fires_exactly_on_violated_bounds`
/// unit test inside `src/bin/ringdeploy.rs`, which feeds the decision
/// function a fabricated violated certificate.
#[test]
fn certify_succeeds_with_all_holds_flags_true_on_a_real_instance() {
    let json = run_cli(
        &[
            "--n",
            "6",
            "--homes",
            "0,1",
            "--algo",
            "algo1",
            "--certify",
            "--json",
        ],
        true,
    );
    for cert_json in field(&json, "certificates").as_array().expect("array") {
        assert_eq!(field(cert_json, "holds"), &Json::Bool(true));
    }
}
