//! `ringdeploy --serve` / `--connect` integration tests: real daemon
//! subprocess, real client subprocesses, plus the stdio transport.

#![cfg(feature = "serde")]

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use ringdeploy_json::Json;

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ringdeploy"))
}

/// Spawns the daemon on an ephemeral port and reads the advertised
/// address off its `listening <addr>` line.
fn spawn_daemon() -> (Child, String) {
    let mut child = binary()
        .args(["--serve", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let stdout = child.stdout.as_mut().expect("daemon stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// Runs `--connect` with `args`, asserting success; returns the parsed
/// frame lines.
fn connect(addr: &str, args: &[&str]) -> Vec<Json> {
    let output = binary()
        .arg("--connect")
        .arg(addr)
        .args(args)
        .output()
        .expect("run client");
    assert!(
        output.status.success(),
        "client failed: {}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("utf8 frames")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad frame {l:?}: {e}")))
        .collect()
}

fn frame_type(frame: &Json) -> String {
    frame.field("type").expect("typed frame")
}

fn rows(frames: &[Json]) -> Vec<&Json> {
    frames.iter().filter(|f| frame_type(f) == "row").collect()
}

#[test]
fn serve_and_connect_round_trip_with_cache_hits() {
    let (mut daemon, addr) = spawn_daemon();
    let job = [
        "--job",
        "sweep",
        "--workload",
        "random",
        "--n",
        "16",
        "--k",
        "4",
        "--seeds",
        "0,1",
    ];

    let cold = connect(&addr, &job);
    let cold_rows = rows(&cold);
    assert_eq!(cold_rows.len(), 2);
    for row in &cold_rows {
        let cached: bool = row.field("cached").expect("cached flag");
        assert!(!cached);
    }

    let warm = connect(&addr, &job);
    let warm_rows = rows(&warm);
    assert_eq!(warm_rows.len(), 2);
    for (cold_row, warm_row) in cold_rows.iter().zip(&warm_rows) {
        let cached: bool = warm_row.field("cached").expect("cached flag");
        assert!(cached, "second run served from cache");
        let cold_payload = cold_row.field_json("payload").to_string();
        let warm_payload = warm_row.field_json("payload").to_string();
        assert_eq!(cold_payload, warm_payload, "byte-identical cached reply");
    }

    let stats = connect(&addr, &["--stats"]);
    assert_eq!(stats.len(), 1);
    let cache = stats[0].field_json("cache");
    let hits: u64 = cache.field("hits").expect("hits counter");
    let cells: u64 = stats[0].field("cells_computed").expect("cells counter");
    assert_eq!(hits, 2);
    assert_eq!(cells, 2, "warm run did not re-run the engine");

    let bye = connect(&addr, &["--shutdown"]);
    assert!(bye.iter().any(|f| frame_type(f) == "bye"));

    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exits cleanly after shutdown");
}

/// stdio transport: frames on stdin/stdout of a single process; EOF on
/// stdin doubles as shutdown.
#[test]
fn stdio_mode_serves_one_client_and_exits_on_eof() {
    let mut daemon = binary()
        .args(["--serve", "stdio", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stdio daemon");
    {
        let stdin = daemon.stdin.as_mut().expect("daemon stdin");
        writeln!(
            stdin,
            r#"{{"type":"submit","id":5,"job":{{"kind":"sweep","algorithms":["algo1-full-knowledge"],"workloads":[{{"family":"uniform","n":12,"k":3}}]}}}}"#
        )
        .expect("write submit");
    }
    daemon.stdin.take(); // close stdin: EOF = shutdown

    let output = daemon.wait_with_output().expect("daemon exit");
    assert!(output.status.success());
    let frames: Vec<Json> = String::from_utf8(output.stdout)
        .expect("utf8 frames")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad frame {l:?}: {e}")))
        .collect();
    let types: Vec<String> = frames.iter().map(frame_type).collect();
    assert!(
        types.iter().any(|t| t == "row"),
        "job streamed before EOF shutdown: {types:?}"
    );
    // Frames per job: accepted, row, done — then bye on drain.
    assert_eq!(types.last().map(String::as_str), Some("bye"));
}

/// Helper: read a sub-object (Json has typed `field` but frames nest).
trait FieldJson {
    fn field_json(&self, name: &str) -> &Json;
}

impl FieldJson for Json {
    fn field_json(&self, name: &str) -> &Json {
        let Json::Object(map) = self else {
            panic!("expected object frame");
        };
        map.get(name)
            .unwrap_or_else(|| panic!("missing field `{name}`"))
    }
}
