//! End-to-end matrix: every algorithm × configuration family × scheduler
//! must reach uniform deployment (Definitions 1/2).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ringdeploy::analysis::{
    clustered_config, periodic_config, quarter_ring_config, random_config, uniform_config,
};
use ringdeploy::{Algorithm, DeployReport, Deployment, InitialConfig, Schedule};

/// Drives one run through the builder; `run_preset` maps the
/// `Synchronous` preset to the type-level lock-step mode.
fn run_deploy(init: &InitialConfig, algo: Algorithm, schedule: Schedule) -> DeployReport {
    Deployment::of(init)
        .algorithm(algo)
        .run_preset(schedule)
        .expect("run completes")
}

fn configs() -> Vec<(&'static str, InitialConfig)> {
    let mut rng = SmallRng::seed_from_u64(20160725); // PODC'16 date
    vec![
        ("random-16-4", random_config(&mut rng, 16, 4)),
        ("random-45-9", random_config(&mut rng, 45, 9)),
        ("random-97-13", random_config(&mut rng, 97, 13)), // prime n, n % k ≠ 0
        ("clustered-40-10", clustered_config(40, 10, 0.25)),
        ("quarter-64-16", quarter_ring_config(64, 16)),
        ("periodic-l2", periodic_config(36, 6, 2)),
        ("periodic-l3", periodic_config(36, 6, 3)),
        ("uniform-l-k", uniform_config(32, 8)),
        (
            "two-agents",
            InitialConfig::new(9, vec![3, 4]).expect("valid"),
        ),
        (
            "dense-k-eq-n-half",
            InitialConfig::new(12, vec![0, 1, 2, 3, 4, 5]).expect("valid"),
        ),
        (
            "full-ring-k-eq-n",
            InitialConfig::new(6, (0..6).collect()).expect("valid"),
        ),
        (
            "k-eq-n-minus-1",
            InitialConfig::new(7, (0..6).collect()).expect("valid"),
        ),
        (
            "prime-n-k2",
            InitialConfig::new(13, vec![0, 1]).expect("valid"),
        ),
    ]
}

#[test]
fn every_algorithm_deploys_on_every_config_round_robin() {
    for (name, init) in configs() {
        for algo in Algorithm::ALL {
            let report = run_deploy(&init, algo, Schedule::RoundRobin);
            assert!(
                report.succeeded(),
                "{algo} on {name}: {:?} (positions {:?})",
                report.check,
                report.positions
            );
        }
    }
}

#[test]
fn every_algorithm_deploys_under_random_schedules() {
    for (name, init) in configs() {
        for algo in Algorithm::ALL {
            for seed in [1u64, 2, 3] {
                let report = run_deploy(&init, algo, Schedule::Random(seed));
                assert!(
                    report.succeeded(),
                    "{algo} on {name} seed {seed}: {:?}",
                    report.check
                );
            }
        }
    }
}

#[test]
fn every_algorithm_deploys_under_adversaries() {
    for (name, init) in configs() {
        for algo in Algorithm::ALL {
            for schedule in [
                Schedule::OneAtATime,
                Schedule::DelayAgent(0),
                Schedule::Synchronous,
            ] {
                let report = run_deploy(&init, algo, schedule);
                assert!(
                    report.succeeded(),
                    "{algo} on {name} under {schedule:?}: {:?}",
                    report.check
                );
            }
        }
    }
}

#[test]
fn final_positions_are_schedule_independent_for_algo1_and_relaxed() {
    // Algorithm 1's target of each agent is a pure function of the initial
    // configuration; the relaxed algorithm's final position is
    // home + 12·n + disBase + offset(rank) mod n — also schedule-free.
    for (name, init) in configs() {
        for algo in [Algorithm::FullKnowledge, Algorithm::Relaxed] {
            let baseline = run_deploy(&init, algo, Schedule::RoundRobin);
            for schedule in [
                Schedule::Random(9),
                Schedule::OneAtATime,
                Schedule::Synchronous,
            ] {
                let report = run_deploy(&init, algo, schedule);
                assert_eq!(
                    report.positions, baseline.positions,
                    "{algo} positions changed with schedule on {name}"
                );
            }
        }
    }
}

#[test]
fn occupied_set_is_schedule_independent_for_algo2() {
    // Algorithm 2's follower-to-target assignment may depend on the
    // interleaving, but the *set* of occupied nodes (all target nodes) is
    // determined by the initial configuration.
    for (name, init) in configs() {
        let mut baseline = run_deploy(&init, Algorithm::LogSpace, Schedule::RoundRobin).positions;
        baseline.sort_unstable();
        for schedule in [
            Schedule::Random(5),
            Schedule::OneAtATime,
            Schedule::Synchronous,
        ] {
            let mut got = run_deploy(&init, Algorithm::LogSpace, schedule).positions;
            got.sort_unstable();
            assert_eq!(got, baseline, "occupied set changed on {name}");
        }
    }
}

#[test]
fn move_bounds_hold_across_the_matrix() {
    for (name, init) in configs() {
        let n = init.ring_size() as u64;
        let k = init.agent_count() as u64;
        let l = init.symmetry_degree() as u64;
        for algo in Algorithm::ALL {
            let report = run_deploy(&init, algo, Schedule::Random(17));
            let bound = if algo == Algorithm::FullKnowledge {
                3 * k * n
            } else if algo == Algorithm::LogSpace {
                4 * k * n
            } else {
                14 * k * (n / l) + k
            };
            assert!(
                report.metrics.total_moves() <= bound,
                "{algo} on {name}: {} moves > bound {bound}",
                report.metrics.total_moves()
            );
        }
    }
}

#[test]
fn memory_scaling_separates_algo1_from_algo2() {
    // Table 1's memory shapes: growing k at fixed n multiplies Algorithm
    // 1's peak memory (it stores the whole distance sequence, O(k log n))
    // while Algorithm 2's stays flat (O(log n) counters only).
    let peak = |algo: Algorithm, k: usize| {
        let mut rng = SmallRng::seed_from_u64(7);
        let init = random_config(&mut rng, 512, k);
        run_deploy(&init, algo, Schedule::RoundRobin)
            .metrics
            .peak_memory_bits()
    };
    let a1_small = peak(Algorithm::FullKnowledge, 8);
    let a1_large = peak(Algorithm::FullKnowledge, 64);
    let a2_small = peak(Algorithm::LogSpace, 8);
    let a2_large = peak(Algorithm::LogSpace, 64);
    // k grows 8×; entry widths shrink as gaps tighten (≈ log(n/k) bits per
    // entry), so expect at least ~3× growth.
    assert!(
        a1_large >= 3 * a1_small,
        "algo1 memory must grow ~linearly in k: {a1_small} -> {a1_large} bits"
    );
    // Algorithm 2 keeps ~8 counters each of O(log n) / O(log k) bits; the
    // k-dependence is logarithmic (a few extra bits per counter), never
    // linear.
    assert!(
        a2_large <= a2_small + 32,
        "algo2 memory must stay O(log n): {a2_small} -> {a2_large} bits"
    );
    assert!(
        2 * a2_large < a1_large,
        "at k = 64: algo2 {a2_large} bits vs algo1 {a1_large} bits"
    );
}
