//! Exhaustive model checking: on small instances, **every** asynchronous
//! schedule (not a sample — all of them) leads each algorithm to uniform
//! deployment, and no schedule can loop forever.
//!
//! A successful exploration proves, for the instance at hand:
//! * safety — every maximal execution ends uniformly deployed;
//! * termination under arbitrary (even unfair-in-the-limit) schedules —
//!   the configuration graph is acyclic.

use ringdeploy::sim::explore::{explore_all_schedules, ExploreLimits};
use ringdeploy::sim::{satisfies_halting_deployment, satisfies_suspended_deployment};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge, Ring, TerminatingEstimator};

#[test]
fn algo1_correct_under_all_schedules() {
    for (n, homes) in [
        (6usize, vec![0usize, 1]),
        (6, vec![0, 1, 3]),
        (8, vec![0, 1, 2]),
        (9, vec![0, 4, 5]),
        (10, vec![0, 5]), // periodic l = 2
    ] {
        let k = homes.len();
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| FullKnowledge::new(k));
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1);
        assert!(report.states > 1);
    }
}

#[test]
fn algo2_correct_under_all_schedules() {
    for (n, homes) in [
        (6usize, vec![0usize, 1]),
        (6, vec![0, 1, 3]),
        (8, vec![0, 1, 2]),
        (8, vec![0, 4]), // periodic l = 2: both become leaders
    ] {
        let k = homes.len();
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| LogSpace::new(k));
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1);
    }
}

#[test]
fn relaxed_correct_under_all_schedules() {
    // The relaxed algorithm's walks are ~14n per agent, so keep instances
    // tiny; exploration still covers millions of interleavings.
    for (n, homes) in [
        (4usize, vec![0usize, 1]),
        (5, vec![0, 2]),
        (6, vec![0, 1, 3]),
    ] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| NoKnowledge::new());
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_suspended_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1, "n={n} homes={homes:?}");
    }
}

#[test]
fn strawman_violation_is_found_by_exploration() {
    // The explorer must *find* the Theorem 5 failure, demonstrating that
    // predicate violations are reported, not just assumed absent. Smallest
    // misestimating instance: five consecutive agents on an 8-node ring —
    // the first agent observes gaps (1,1,1,1), estimates n' = 1 and halts
    // after 4 hops, which can never be uniform (8/5 needs gaps 1 and 2).
    let init = InitialConfig::new(8, vec![0, 1, 2, 3, 4]).expect("valid");
    let ring = Ring::new(&init, |_| TerminatingEstimator::new());
    let result = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
        satisfies_halting_deployment(r).is_satisfied()
    });
    assert!(result.is_err(), "the strawman's failure must be discovered");
}

#[test]
fn exploration_scales_report_sanity() {
    // Sanity on the report fields for a two-agent instance.
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(2));
    let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
        satisfies_halting_deployment(r).is_satisfied()
    })
    .expect("explore");
    // Each agent: 1 boot + 6 selection arrivals + deployment ≤ 3 hops,
    // so depth is bounded by ~20 actions and the state count by their
    // product.
    assert!(report.max_depth_seen >= 14);
    assert!(report.states >= report.max_depth_seen);
}
