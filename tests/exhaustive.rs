//! Exhaustive model checking: on small instances, **every** asynchronous
//! schedule (not a sample — all of them) leads each algorithm to uniform
//! deployment, and no schedule can loop forever.
//!
//! A successful exploration proves, for the instance at hand:
//! * safety — every maximal execution ends uniformly deployed;
//! * termination under arbitrary (even unfair-in-the-limit) schedules —
//!   the configuration graph is acyclic.

use ringdeploy::analysis::explore_one;
use ringdeploy::sim::explore::{
    explore_all_schedules, ExploreLimits, ExploreReport, Explorer, SymmetryMode,
};
use ringdeploy::sim::{satisfies_halting_deployment, satisfies_suspended_deployment};
use ringdeploy::{
    Algorithm, FullKnowledge, InitialConfig, LogSpace, NoKnowledge, Ring, TerminatingEstimator,
};

/// Runs the symmetry-reduced explorer on one instance through the shared
/// algorithm dispatch (`analysis::explore_one`), asserting success and
/// returning the report. Two workers exercise the work-stealing engine
/// (donation, striped visited map) at verification scale regardless of
/// host core count; the serial reference is differentially checked in
/// `explorer_differential.rs`.
fn verify_instance(n: usize, homes: &[usize], algorithm: Algorithm) -> ExploreReport {
    let k = homes.len();
    let init = InitialConfig::new(n, homes.to_vec()).expect("valid instance");
    let explorer = Explorer::new()
        .limits(ExploreLimits::for_instance(n, k))
        .symmetry(SymmetryMode::Rotation)
        .threads(2);
    let report = explore_one(algorithm, &init, &explorer)
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
    assert!(report.terminals >= 1, "n={n} homes={homes:?}");
    assert!(report.states > report.terminals, "n={n} homes={homes:?}");
    report
}

#[test]
fn algo1_correct_under_all_schedules() {
    for (n, homes) in [
        (6usize, vec![0usize, 1]),
        (6, vec![0, 1, 3]),
        (8, vec![0, 1, 2]),
        (9, vec![0, 4, 5]),
        (10, vec![0, 5]), // periodic l = 2
    ] {
        let k = homes.len();
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| FullKnowledge::new(k));
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1);
        assert!(report.states > 1);
    }
}

#[test]
fn algo2_correct_under_all_schedules() {
    for (n, homes) in [
        (6usize, vec![0usize, 1]),
        (6, vec![0, 1, 3]),
        (8, vec![0, 1, 2]),
        (8, vec![0, 4]), // periodic l = 2: both become leaders
    ] {
        let k = homes.len();
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| LogSpace::new(k));
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_halting_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1);
    }
}

#[test]
fn relaxed_correct_under_all_schedules() {
    // The relaxed algorithm's walks are ~14n per agent, so keep instances
    // tiny; exploration still covers millions of interleavings.
    for (n, homes) in [
        (4usize, vec![0usize, 1]),
        (5, vec![0, 2]),
        (6, vec![0, 1, 3]),
    ] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let ring = Ring::new(&init, |_| NoKnowledge::new());
        let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
            satisfies_suspended_deployment(r).is_satisfied()
        })
        .unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e}"));
        assert!(report.terminals >= 1, "n={n} homes={homes:?}");
    }
}

// ---------------------------------------------------------------------
// Verification at n ≥ 12, k = 4 — the scale the rotation-quotient +
// parallel engine unlocked (the plain serial DFS topped out around
// n = 10 / k = 3). Each algorithm family is machine-checked on one
// clustered (worst-case spread, aperiodic) and one symmetric instance.
// ---------------------------------------------------------------------

#[test]
fn algo1_exhaustive_n12_k4_clustered() {
    // Aperiodic worst case: the quotient cannot merge rotations of the
    // start, but the proof still covers every one of the thousands of
    // interleavings of the four selection walks.
    let report = verify_instance(12, &[0, 1, 2, 3], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo1_exhaustive_n16_k4_uniform() {
    // Symmetry degree l = 4: the quotient collapses the four rotated
    // copies of every asymmetric intermediate state (~3.9× fewer states).
    let report = verify_instance(16, &[0, 4, 8, 12], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo1_exhaustive_n12_k6() {
    // Six agents: branching grows with k, reduction approaches l = 6.
    let report = verify_instance(12, &[0, 2, 4, 6, 8, 10], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo2_exhaustive_n12_k4_clustered() {
    let report = verify_instance(12, &[0, 1, 2, 3], Algorithm::LogSpace);
    // Algorithm 2's leader election admits several final offsets; the
    // quotient folds rotation-equivalent ones together.
    assert!(report.terminals >= 1);
}

#[test]
fn algo2_exhaustive_n16_k4_uniform() {
    let report = verify_instance(16, &[0, 4, 8, 12], Algorithm::LogSpace);
    assert_eq!(report.terminals, 1);
}

#[test]
fn relaxed_exhaustive_n12_k4_clustered() {
    // The largest instance in the suite (~67 k quotient states): the
    // no-knowledge algorithm's long walks make clustered starts by far
    // the most schedule-rich family.
    let report = verify_instance(12, &[0, 1, 2, 3], Algorithm::Relaxed);
    assert_eq!(report.terminals, 1);
}

#[test]
fn relaxed_exhaustive_n16_k4_uniform() {
    let report = verify_instance(16, &[0, 4, 8, 12], Algorithm::Relaxed);
    assert_eq!(report.terminals, 1);
}

// ---------------------------------------------------------------------
// Verification at n = 20, k = 4 — the scale the 0.5 reversible engine
// unlocked (clone-free in-place DFS + packed parallel frontier +
// incremental canonical fingerprints; the clone-based 0.4 engine topped
// out at n = 16 within the same time budgets). One symmetric instance
// per algorithm family, machine-checked over every fair schedule.
// ---------------------------------------------------------------------

#[test]
fn algo1_exhaustive_n20_k4_uniform() {
    let report = verify_instance(20, &[0, 5, 10, 15], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo2_exhaustive_n20_k4_uniform() {
    let report = verify_instance(20, &[0, 5, 10, 15], Algorithm::LogSpace);
    assert_eq!(report.terminals, 1);
}

#[test]
fn relaxed_exhaustive_n20_k4_uniform() {
    // ~25 k quotient states; the largest relaxed instance in the suite.
    let report = verify_instance(20, &[0, 5, 10, 15], Algorithm::Relaxed);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo1_exhaustive_n14_k6() {
    // Six agents spread over 14 nodes (distance sequence 2,2,2,2,2,4 —
    // aperiodic, so the quotient cannot help): ~178 k states, the widest
    // branching in the suite, exercising the packed parallel frontier at
    // real scale.
    let report = verify_instance(14, &[0, 2, 4, 6, 8, 10], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

// ---------------------------------------------------------------------
// Verification at n = 24, k = 4 and n = 16, k = 6 — the ceiling the 0.9
// work-stealing explorer unlocked (per-worker clone-free DFS over
// delta-encoded PackedState steal handoffs + a striped concurrent
// visited map; the 0.4 barrier-synchronized BFS paid more in layer
// merges than it won back in parallelism). Every family, including
// g-partial gathering, is machine-checked at the new scale.
// ---------------------------------------------------------------------

#[test]
fn algo1_exhaustive_n24_k4_uniform() {
    // ~13 k quotient states over a 24-node ring.
    let report = verify_instance(24, &[0, 6, 12, 18], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo2_exhaustive_n24_k4_uniform() {
    let report = verify_instance(24, &[0, 6, 12, 18], Algorithm::LogSpace);
    assert_eq!(report.terminals, 1);
}

#[test]
fn relaxed_exhaustive_n24_k4_uniform() {
    // ~49 k quotient states; the largest relaxed instance in the suite.
    let report = verify_instance(24, &[0, 6, 12, 18], Algorithm::Relaxed);
    assert_eq!(report.terminals, 1);
}

#[test]
fn gathering_exhaustive_n24_k4_g2() {
    // Two clustered pairs half a ring apart (l = 2, k/l = 2 ≥ g): every
    // schedule gathers the four agents into groups of ≥ 2 (~31 k states).
    let report = verify_instance(24, &[0, 1, 12, 13], Algorithm::partial_gathering(2));
    assert_eq!(report.terminals, 1);
}

#[test]
fn algo1_exhaustive_n16_k6() {
    // Six agents on sixteen nodes (period 8, l = 2): ~150 k quotient
    // states, the widest branching in the suite.
    let report = verify_instance(16, &[0, 2, 4, 8, 10, 12], Algorithm::FullKnowledge);
    assert_eq!(report.terminals, 1);
}

#[test]
fn gathering_exhaustive_n16_k6_g3() {
    // Two clustered triples half a ring apart (l = 2, k/l = 3 ≥ g):
    // ~152 k quotient states.
    let report = verify_instance(16, &[0, 1, 2, 8, 9, 10], Algorithm::partial_gathering(3));
    assert_eq!(report.terminals, 1);
}

#[test]
fn symmetry_reduction_preserves_the_verdict() {
    // The quotient must change the state count, never the outcome: on a
    // fully symmetric instance both modes verify the same property.
    let init = InitialConfig::new(12, vec![0, 3, 6, 9]).expect("valid");
    let pred = |r: &Ring<FullKnowledge>| satisfies_halting_deployment(r).is_satisfied();
    let ring = Ring::new(&init, |_| FullKnowledge::new(4));
    let plain = Explorer::new()
        .symmetry(SymmetryMode::Off)
        .threads(1)
        .run(&ring, pred)
        .expect("plain exploration");
    let reduced = Explorer::new()
        .symmetry(SymmetryMode::Rotation)
        .threads(1)
        .run(&ring, pred)
        .expect("reduced exploration");
    assert!(
        reduced.states * 3 < plain.states,
        "l = 4 symmetry must cut states by ≥3× ({} vs {})",
        reduced.states,
        plain.states
    );
    // Each terminal class's orbit has size dividing l = 4 (1, 2 or 4),
    // so only these bounds are sound — NOT divisibility of the totals.
    assert!(plain.terminals >= reduced.terminals);
    assert!(plain.terminals <= 4 * reduced.terminals);
}

#[test]
fn strawman_violation_is_found_by_exploration() {
    // The explorer must *find* the Theorem 5 failure, demonstrating that
    // predicate violations are reported, not just assumed absent. Smallest
    // misestimating instance: five consecutive agents on an 8-node ring —
    // the first agent observes gaps (1,1,1,1), estimates n' = 1 and halts
    // after 4 hops, which can never be uniform (8/5 needs gaps 1 and 2).
    let init = InitialConfig::new(8, vec![0, 1, 2, 3, 4]).expect("valid");
    let ring = Ring::new(&init, |_| TerminatingEstimator::new());
    let result = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
        satisfies_halting_deployment(r).is_satisfied()
    });
    assert!(result.is_err(), "the strawman's failure must be discovered");
}

#[test]
fn exploration_scales_report_sanity() {
    // Sanity on the report fields for a two-agent instance.
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(2));
    let report = explore_all_schedules(&ring, ExploreLimits::default(), |r| {
        satisfies_halting_deployment(r).is_satisfied()
    })
    .expect("explore");
    // Each agent: 1 boot + 6 selection arrivals + deployment ≤ 3 hops,
    // so depth is bounded by ~20 actions and the state count by their
    // product.
    assert!(report.max_depth_seen >= 14);
    assert!(report.states >= report.max_depth_seen);
}
