//! Witness-replay round trips: every adversarial worst case must be
//! **independently reproducible**. The branch-and-bound returns its
//! worst schedule as a `Vec` of scheduler picks; replaying that log
//! through the stock [`Replay`] scheduler on a *fresh* ring — no shared
//! state with the search — must reach quiescence with exactly the
//! claimed objective value and exactly the claimed terminal canonical
//! fingerprint. A worst case that cannot be replayed would be a claim,
//! not a measurement.
//!
//! Covered: all three algorithm families × all three objectives, under
//! the paper's FIFO links and under the LIFO overtaking ablation (where
//! the families still terminate — see the divergence pin at the bottom
//! for the one that does not).

use ringdeploy::sim::adversary::{Adversary, AdversaryError, Objective};
use ringdeploy::sim::canonical::canonical_fingerprint;
use ringdeploy::sim::explore::ExploreLimits;
use ringdeploy::sim::scheduler::Replay;
use ringdeploy::sim::{Behavior, LinkDiscipline, Ring, RunLimits};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge};

/// Runs the worst-case search for every objective and replays each
/// witness on a fresh ring, checking value and terminal fingerprint
/// bit-identically.
fn check_witness_round_trip<B>(make: &dyn Fn() -> Ring<B>, discipline: LinkDiscipline, label: &str)
where
    B: Behavior + Clone + std::hash::Hash,
    B::Message: Clone + std::hash::Hash,
{
    let prepare = || {
        let mut ring = make();
        ring.set_link_discipline(discipline);
        ring
    };
    let search_ring = prepare();
    let limits = ExploreLimits::for_instance(search_ring.ring_size(), search_ring.agent_count());
    for objective in Objective::ALL {
        let worst = Adversary::new()
            .limits(limits)
            .run(&search_ring, objective)
            .unwrap_or_else(|e| panic!("{label} {objective}: search failed: {e}"));

        let mut replay_ring = prepare();
        let mut replay = Replay::new(worst.witness.clone());
        let outcome = replay_ring
            .run(&mut replay, RunLimits::default())
            .unwrap_or_else(|e| panic!("{label} {objective}: witness does not replay: {e}"));
        assert!(
            outcome.quiescent,
            "{label} {objective}: witness must end at a terminal configuration"
        );
        assert_eq!(
            replay.remaining(),
            0,
            "{label} {objective}: witness must be consumed exactly"
        );
        let replayed_value = match objective {
            Objective::TotalMoves => outcome.metrics.total_moves(),
            Objective::TotalActivations => outcome.steps,
            Objective::PeakMemoryBits => outcome.metrics.peak_memory_bits() as u64,
        };
        assert_eq!(
            replayed_value, worst.value,
            "{label} {objective}: replayed objective value diverges from the claim"
        );
        assert_eq!(
            canonical_fingerprint(&replay_ring),
            worst.terminal_fingerprint,
            "{label} {objective}: replayed terminal fingerprint diverges from the claim"
        );
        assert_eq!(
            worst.witness.len(),
            outcome.steps as usize,
            "{label} {objective}: one scheduler pick per executed action"
        );
    }
}

#[test]
fn witnesses_replay_bit_identically_under_fifo() {
    for (n, homes) in [(6usize, vec![0usize, 3]), (8, vec![0, 1, 2])] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let k = init.agent_count();
        check_witness_round_trip(
            &|| Ring::new(&init, |_| FullKnowledge::new(k)),
            LinkDiscipline::Fifo,
            &format!("algo1 fifo n={n} homes={homes:?}"),
        );
        check_witness_round_trip(
            &|| Ring::new(&init, |_| LogSpace::new(k)),
            LinkDiscipline::Fifo,
            &format!("algo2 fifo n={n} homes={homes:?}"),
        );
        check_witness_round_trip(
            &|| Ring::new(&init, |_| NoKnowledge::new()),
            LinkDiscipline::Fifo,
            &format!("relaxed fifo n={n} homes={homes:?}"),
        );
    }
}

#[test]
fn witnesses_replay_bit_identically_under_lifo() {
    // The LIFO ablation changes the reachable space (overtaking pushes
    // displace queue heads) but the round-trip contract is identical.
    // Instances are chosen where the family still terminates under
    // overtaking; the no-knowledge family does not on any multi-agent
    // instance (pinned below), so its LIFO coverage is the single-agent
    // ring, where the discipline is degenerate but the plumbing — undo
    // of displaced heads included — still runs.
    for (n, homes) in [(6usize, vec![0usize, 3]), (6, vec![0, 1])] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let k = init.agent_count();
        check_witness_round_trip(
            &|| Ring::new(&init, |_| FullKnowledge::new(k)),
            LinkDiscipline::Lifo,
            &format!("algo1 lifo n={n} homes={homes:?}"),
        );
    }
    for (n, homes) in [(6usize, vec![0usize, 3]), (8, vec![0, 4])] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        let k = init.agent_count();
        check_witness_round_trip(
            &|| Ring::new(&init, |_| LogSpace::new(k)),
            LinkDiscipline::Lifo,
            &format!("algo2 lifo n={n} homes={homes:?}"),
        );
    }
    let init = InitialConfig::new(5, vec![0]).expect("valid");
    check_witness_round_trip(
        &|| Ring::new(&init, |_| NoKnowledge::new()),
        LinkDiscipline::Lifo,
        "relaxed lifo n=5 homes=[0]",
    );
}

/// Ablation finding, pinned: under LIFO links the no-knowledge family's
/// worst case is **unbounded** — overtaking breaks the token-counting
/// walks, agents keep moving, and because their behavior counters grow
/// the configuration space never repeats (so this surfaces as the depth
/// budget, not a cycle). The FIFO assumption of §2.1 is load-bearing
/// for the relaxed algorithms' *move bounds*, not just their
/// correctness.
#[test]
fn relaxed_worst_case_diverges_under_lifo() {
    let init = InitialConfig::new(4, vec![0, 2]).expect("valid");
    let mut ring = Ring::new(&init, |_| NoKnowledge::new());
    ring.set_link_discipline(LinkDiscipline::Lifo);
    let err = Adversary::new()
        .limits(ExploreLimits::for_instance(4, 2))
        .run(&ring, Objective::TotalMoves)
        .expect_err("the LIFO worst case must not be finite");
    assert!(
        matches!(err, AdversaryError::LimitExceeded(_)),
        "expected the depth budget to cut the unbounded walk, got: {err}"
    );
}
