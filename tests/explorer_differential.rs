//! Differential soundness tests for the exploration engine:
//!
//! * every terminal configuration reached by sampled (seeded random)
//!   executions appears in the exhaustive explorer's terminal set — the
//!   explorer really does cover everything sampling can find;
//! * the frontier-parallel engine reports identical state/terminal counts,
//!   terminal fingerprints and merge-edge diagnostics to the retained
//!   serial reference, under both symmetry modes.

use ringdeploy::sim::canonical::{canonical_fingerprint, plain_fingerprint};
use ringdeploy::sim::explore::{ExploreLimits, ExploreReport, Explorer, SymmetryMode};
use ringdeploy::sim::scheduler::Random;
use ringdeploy::sim::{
    satisfies_halting_deployment, satisfies_suspended_deployment, Behavior, RunLimits,
};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge, Ring};

fn explore<B>(init: &InitialConfig, make: impl Fn() -> B + Sync, halts: bool) -> ExploreReport
where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let ring = Ring::new(init, |_| make());
    Explorer::new()
        .symmetry(SymmetryMode::Rotation)
        .threads(1)
        .run(&ring, move |r| {
            if halts {
                satisfies_halting_deployment(r).is_satisfied()
            } else {
                satisfies_suspended_deployment(r).is_satisfied()
            }
        })
        .expect("exhaustive exploration succeeds")
}

/// 100 seeded random executions; every final configuration's canonical
/// fingerprint must be a member of the exhaustive terminal set.
fn sampled_terminals_are_covered<B>(
    init: &InitialConfig,
    make: impl Fn() -> B + Sync,
    halts: bool,
    label: &str,
) where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let report = explore(init, &make, halts);
    assert!(report.terminals >= 1, "{label}");
    let n = init.ring_size();
    let k = init.agent_count();
    for seed in 0..100u64 {
        let mut ring = Ring::new(init, |_| make());
        let out = ring
            .run(&mut Random::seeded(seed), RunLimits::for_instance(n, k))
            .unwrap_or_else(|e| panic!("{label}: sampled run {seed} failed: {e}"));
        assert!(out.quiescent, "{label}: seed {seed}");
        let fp = canonical_fingerprint(&ring);
        assert!(
            report.contains_terminal(fp),
            "{label}: seed {seed} reached a terminal the explorer missed"
        );
    }
}

#[test]
fn algo1_sampled_terminals_subset_of_exhaustive() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    sampled_terminals_are_covered(&init, || FullKnowledge::new(3), true, "algo1");
}

#[test]
fn algo2_sampled_terminals_subset_of_exhaustive() {
    // Clustered homes: under rotation reduction several distinct final
    // offsets share terminal classes; every sampled run must land in one.
    let init = InitialConfig::new(9, vec![0, 1, 2]).expect("valid");
    sampled_terminals_are_covered(&init, || LogSpace::new(3), true, "algo2");
}

#[test]
fn relaxed_sampled_terminals_subset_of_exhaustive() {
    let init = InitialConfig::new(6, vec![0, 1, 3]).expect("valid");
    sampled_terminals_are_covered(&init, NoKnowledge::new, false, "relaxed");
}

/// The clone-free in-place serial DFS and the packed-state parallel BFS
/// must both agree with the **retained clone-based reference explorer**
/// on every deterministic report field, for all three algorithms and both
/// symmetry modes on the PR 3 differential instances (`max_depth_seen`
/// and `peak_frontier` are the documented exceptions: DFS spanning trees
/// and BFS layers measure depth and live-state width differently).
#[test]
fn clone_free_engines_match_clone_based_reference() {
    let cases: Vec<(&str, InitialConfig)> = vec![
        (
            "n=8 clustered",
            InitialConfig::new(8, vec![0, 1, 2]).expect("valid"),
        ),
        (
            "n=8 uniform",
            InitialConfig::new(8, vec![0, 2, 4, 6]).expect("valid"),
        ),
    ];
    for (label, init) in &cases {
        let k = init.agent_count();
        for symmetry in [SymmetryMode::Off, SymmetryMode::Rotation] {
            for algo in 0..3 {
                let (reference, serial, parallel) = match algo {
                    0 => run_three(init, || FullKnowledge::new(k), true, symmetry),
                    1 => run_three(init, || LogSpace::new(k), true, symmetry),
                    _ => run_three(init, NoKnowledge::new, false, symmetry),
                };
                for (engine, report) in [("serial", &serial), ("parallel", &parallel)] {
                    assert_eq!(
                        reference.states, report.states,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.terminals, report.terminals,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.terminal_fingerprints, report.terminal_fingerprints,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.merge_edges, report.merge_edges,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                }
            }
        }
    }
}

fn run_three<B>(
    init: &InitialConfig,
    make: impl Fn() -> B + Sync,
    halts: bool,
    symmetry: SymmetryMode,
) -> (ExploreReport, ExploreReport, ExploreReport)
where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let pred = move |r: &Ring<B>| {
        if halts {
            satisfies_halting_deployment(r).is_satisfied()
        } else {
            satisfies_suspended_deployment(r).is_satisfied()
        }
    };
    let ring = Ring::new(init, |_| make());
    let reference = Explorer::new()
        .symmetry(symmetry)
        .run_serial_reference(&ring, pred)
        .expect("reference");
    let serial = Explorer::new()
        .symmetry(symmetry)
        .run_serial(&ring, pred)
        .expect("serial");
    // Force genuine multi-worker execution even on single-core hosts.
    let parallel = Explorer::new()
        .symmetry(symmetry)
        .threads(4)
        .run(&ring, pred)
        .expect("parallel");
    (reference, serial, parallel)
}

/// Under `SymmetryMode::Off` the terminal set is keyed by plain
/// fingerprints; sampled runs must land in it as well (the membership
/// check must match the mode's fingerprint function).
#[test]
fn plain_mode_membership_uses_plain_fingerprints() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(3));
    let report = Explorer::new()
        .symmetry(SymmetryMode::Off)
        .threads(1)
        .run(&ring, |r| satisfies_halting_deployment(r).is_satisfied())
        .expect("explore");
    for seed in 0..25u64 {
        let mut run = Ring::new(&init, |_| FullKnowledge::new(3));
        run.run(&mut Random::seeded(seed), RunLimits::for_instance(8, 3))
            .expect("sampled run");
        assert!(
            report.contains_terminal(plain_fingerprint(&run)),
            "seed {seed}"
        );
    }
}

/// Exploration must respect explicitly tiny limits the same way in both
/// engines (typed limit error, no panic).
#[test]
fn both_engines_report_limit_errors() {
    let init = InitialConfig::new(10, vec![0, 1, 2]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(3));
    for threads in [1usize, 4] {
        let err = Explorer::new()
            .limits(ExploreLimits::new(10, 100_000))
            .threads(threads)
            .run(&ring, |_| true)
            .expect_err("ten states cannot cover the space");
        assert!(
            matches!(
                err.kind(),
                ringdeploy::sim::explore::ExploreErrorKind::LimitExceeded(_)
            ),
            "threads {threads}"
        );
    }
}
