//! Differential soundness tests for the exploration engine:
//!
//! * every terminal configuration reached by sampled (seeded random)
//!   executions appears in the exhaustive explorer's terminal set — the
//!   explorer really does cover everything sampling can find;
//! * the work-stealing engine reports identical state/terminal counts,
//!   terminal fingerprints and merge-edge diagnostics to the clone-free
//!   serial DFS and the retained clone-based reference, across all five
//!   problem families × FIFO/LIFO link disciplines × worker counts
//!   {1, 2, 4}, and every engine agrees on *whether* an instance fails
//!   (a family that breaks under LIFO overtaking must be rejected by
//!   all of them);
//! * limit enforcement is race-free: the `max_states` boundary between
//!   success and `LimitExceeded` sits at exactly the same count for
//!   every engine and worker count;
//! * a property test pins that the stealing order never changes the
//!   report (random instances, workers ∈ {2, 3, 4} vs the serial DFS).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy::sim::canonical::{canonical_fingerprint, plain_fingerprint};
use ringdeploy::sim::explore::{
    ExploreErrorKind, ExploreLimits, ExploreReport, Explorer, SymmetryMode,
};
use ringdeploy::sim::scheduler::Random;
use ringdeploy::sim::{
    satisfies_halting_deployment, satisfies_partial_gathering, satisfies_suspended_deployment,
    Behavior, LinkDiscipline, RunLimits,
};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge, PartialGathering, Ring};

fn explore<B>(init: &InitialConfig, make: impl Fn() -> B + Sync, halts: bool) -> ExploreReport
where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let ring = Ring::new(init, |_| make());
    Explorer::new()
        .symmetry(SymmetryMode::Rotation)
        .threads(1)
        .run(&ring, move |r| {
            if halts {
                satisfies_halting_deployment(r).is_satisfied()
            } else {
                satisfies_suspended_deployment(r).is_satisfied()
            }
        })
        .expect("exhaustive exploration succeeds")
}

/// 100 seeded random executions; every final configuration's canonical
/// fingerprint must be a member of the exhaustive terminal set.
fn sampled_terminals_are_covered<B>(
    init: &InitialConfig,
    make: impl Fn() -> B + Sync,
    halts: bool,
    label: &str,
) where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let report = explore(init, &make, halts);
    assert!(report.terminals >= 1, "{label}");
    let n = init.ring_size();
    let k = init.agent_count();
    for seed in 0..100u64 {
        let mut ring = Ring::new(init, |_| make());
        let out = ring
            .run(&mut Random::seeded(seed), RunLimits::for_instance(n, k))
            .unwrap_or_else(|e| panic!("{label}: sampled run {seed} failed: {e}"));
        assert!(out.quiescent, "{label}: seed {seed}");
        let fp = canonical_fingerprint(&ring);
        assert!(
            report.contains_terminal(fp),
            "{label}: seed {seed} reached a terminal the explorer missed"
        );
    }
}

#[test]
fn algo1_sampled_terminals_subset_of_exhaustive() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    sampled_terminals_are_covered(&init, || FullKnowledge::new(3), true, "algo1");
}

#[test]
fn algo2_sampled_terminals_subset_of_exhaustive() {
    // Clustered homes: under rotation reduction several distinct final
    // offsets share terminal classes; every sampled run must land in one.
    let init = InitialConfig::new(9, vec![0, 1, 2]).expect("valid");
    sampled_terminals_are_covered(&init, || LogSpace::new(3), true, "algo2");
}

#[test]
fn relaxed_sampled_terminals_subset_of_exhaustive() {
    let init = InitialConfig::new(6, vec![0, 1, 3]).expect("valid");
    sampled_terminals_are_covered(&init, NoKnowledge::new, false, "relaxed");
}

/// The clone-free in-place serial DFS and the packed-state parallel BFS
/// must both agree with the **retained clone-based reference explorer**
/// on every deterministic report field, for all three algorithms and both
/// symmetry modes on the PR 3 differential instances (`max_depth_seen`
/// and `peak_frontier` are the documented exceptions: DFS spanning trees
/// and BFS layers measure depth and live-state width differently).
#[test]
fn clone_free_engines_match_clone_based_reference() {
    let cases: Vec<(&str, InitialConfig)> = vec![
        (
            "n=8 clustered",
            InitialConfig::new(8, vec![0, 1, 2]).expect("valid"),
        ),
        (
            "n=8 uniform",
            InitialConfig::new(8, vec![0, 2, 4, 6]).expect("valid"),
        ),
    ];
    for (label, init) in &cases {
        let k = init.agent_count();
        for symmetry in [SymmetryMode::Off, SymmetryMode::Rotation] {
            for algo in 0..3 {
                let (reference, serial, parallel) = match algo {
                    0 => run_three(init, || FullKnowledge::new(k), true, symmetry),
                    1 => run_three(init, || LogSpace::new(k), true, symmetry),
                    _ => run_three(init, NoKnowledge::new, false, symmetry),
                };
                for (engine, report) in [("serial", &serial), ("parallel", &parallel)] {
                    assert_eq!(
                        reference.states, report.states,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.terminals, report.terminals,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.terminal_fingerprints, report.terminal_fingerprints,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                    assert_eq!(
                        reference.merge_edges, report.merge_edges,
                        "{label} {symmetry:?} algo{algo} {engine}"
                    );
                }
            }
        }
    }
}

fn run_three<B>(
    init: &InitialConfig,
    make: impl Fn() -> B + Sync,
    halts: bool,
    symmetry: SymmetryMode,
) -> (ExploreReport, ExploreReport, ExploreReport)
where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let pred = move |r: &Ring<B>| {
        if halts {
            satisfies_halting_deployment(r).is_satisfied()
        } else {
            satisfies_suspended_deployment(r).is_satisfied()
        }
    };
    let ring = Ring::new(init, |_| make());
    let reference = Explorer::new()
        .symmetry(symmetry)
        .run_serial_reference(&ring, pred)
        .expect("reference");
    let serial = Explorer::new()
        .symmetry(symmetry)
        .run_serial(&ring, pred)
        .expect("serial");
    // Force genuine multi-worker execution even on single-core hosts.
    let parallel = Explorer::new()
        .symmetry(symmetry)
        .threads(4)
        .run(&ring, pred)
        .expect("parallel");
    (reference, serial, parallel)
}

/// Under `SymmetryMode::Off` the terminal set is keyed by plain
/// fingerprints; sampled runs must land in it as well (the membership
/// check must match the mode's fingerprint function).
#[test]
fn plain_mode_membership_uses_plain_fingerprints() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(3));
    let report = Explorer::new()
        .symmetry(SymmetryMode::Off)
        .threads(1)
        .run(&ring, |r| satisfies_halting_deployment(r).is_satisfied())
        .expect("explore");
    for seed in 0..25u64 {
        let mut run = Ring::new(&init, |_| FullKnowledge::new(3));
        run.run(&mut Random::seeded(seed), RunLimits::for_instance(8, 3))
            .expect("sampled run");
        assert!(
            report.contains_terminal(plain_fingerprint(&run)),
            "seed {seed}"
        );
    }
}

/// Exploration must respect explicitly tiny limits the same way in both
/// engines (typed limit error, no panic).
#[test]
fn both_engines_report_limit_errors() {
    let init = InitialConfig::new(10, vec![0, 1, 2]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(3));
    for threads in [1usize, 4] {
        let err = Explorer::new()
            .limits(ExploreLimits::new(10, 100_000))
            .threads(threads)
            .run(&ring, |_| true)
            .expect_err("ten states cannot cover the space");
        assert!(
            matches!(err.kind(), ExploreErrorKind::LimitExceeded(_)),
            "threads {threads}"
        );
    }
}

/// The `max_states` budget is race-free across workers: the boundary
/// between success and `LimitExceeded` sits at exactly the state count
/// of the space, for the serial DFS and the stealing engine at every
/// worker count — a budget of N errors iff the space holds more than N
/// states, never "N plus whatever the workers had in flight".
#[test]
fn limit_boundary_is_engine_independent() {
    let init = InitialConfig::new(10, vec![0, 1, 2]).expect("valid");
    let ring = Ring::new(&init, |_| FullKnowledge::new(3));
    let pred = |r: &Ring<FullKnowledge>| satisfies_halting_deployment(r).is_satisfied();
    let states = Explorer::new()
        .symmetry(SymmetryMode::Rotation)
        .run_serial(&ring, pred)
        .expect("unlimited exploration succeeds")
        .states;
    let at = |max_states: usize| {
        Explorer::new()
            .symmetry(SymmetryMode::Rotation)
            .limits(ExploreLimits::new(max_states, 100_000))
    };
    assert!(
        at(states).run_serial(&ring, pred).is_ok(),
        "serial at the exact count"
    );
    assert!(
        matches!(
            at(states - 1).run_serial(&ring, pred),
            Err(e) if matches!(e.kind(), ExploreErrorKind::LimitExceeded(_))
        ),
        "serial one below the count"
    );
    for threads in [1usize, 2, 4] {
        let exact = at(states).threads(threads).run(&ring, pred);
        assert!(
            exact.is_ok(),
            "threads {threads}: a budget of exactly {states} states must succeed"
        );
        let below = at(states - 1).threads(threads).run(&ring, pred);
        assert!(
            matches!(
                below,
                Err(ref e) if matches!(e.kind(), ExploreErrorKind::LimitExceeded(_))
            ),
            "threads {threads}: a budget of {} states must be exceeded",
            states - 1
        );
    }
}

/// Which engine a differential leg runs.
#[derive(Clone, Copy)]
enum Engine {
    Reference,
    Serial,
    Stealing(usize),
}

/// Runs one engine over one family instance under one link discipline,
/// type-erasing the error to its kind.
fn run_engine<B>(
    init: &InitialConfig,
    make: &(impl Fn() -> B + Sync),
    pred: &(impl Fn(&Ring<B>) -> bool + Sync),
    discipline: LinkDiscipline,
    engine: Engine,
) -> Result<ExploreReport, ExploreErrorKind>
where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let mut ring = Ring::new(init, |_| make());
    ring.set_link_discipline(discipline);
    let explorer =
        Explorer::new()
            .symmetry(SymmetryMode::Rotation)
            .limits(ExploreLimits::for_instance(
                init.ring_size(),
                init.agent_count(),
            ));
    let result = match engine {
        Engine::Reference => explorer.run_serial_reference(&ring, pred),
        Engine::Serial => explorer.run_serial(&ring, pred),
        Engine::Stealing(threads) => explorer.threads(threads).run(&ring, pred),
    };
    result.map_err(|e| e.kind())
}

/// One family × discipline leg: reference, serial and stealing at
/// workers {1, 2, 4} must agree — on the full deterministic report
/// quadruple when the exploration succeeds, and on the *fact* of
/// failure when it does not. The failure kind itself is traversal-
/// shaped, not part of the contract: a family broken under LIFO
/// overtaking typically exhibits violations, livelocks and
/// depth-limit blowups at once, and which one an engine meets first
/// depends on its spanning tree (the reference's explicit stack, the
/// serial DFS's on-path check, the stealing engine's post-sweep
/// certification).
fn assert_family_agrees<B>(
    init: &InitialConfig,
    make: impl Fn() -> B + Sync,
    pred: impl Fn(&Ring<B>) -> bool + Sync,
    discipline: LinkDiscipline,
    label: &str,
) where
    B: Behavior + Clone + std::hash::Hash + Send + Sync,
    B::Message: Clone + std::hash::Hash + Send + Sync,
{
    let reference = run_engine(init, &make, &pred, discipline, Engine::Reference);
    if discipline == LinkDiscipline::Fifo {
        assert!(
            reference.is_ok(),
            "{label}: every family must verify under FIFO (the paper's model): {reference:?}"
        );
    }
    let serial = run_engine(init, &make, &pred, discipline, Engine::Serial);
    let legs = [1usize, 2, 4]
        .map(|threads| run_engine(init, &make, &pred, discipline, Engine::Stealing(threads)));
    for (name, result) in std::iter::once(("serial", &serial)).chain([
        ("stealing-1", &legs[0]),
        ("stealing-2", &legs[1]),
        ("stealing-4", &legs[2]),
    ]) {
        match (&reference, result) {
            (Ok(want), Ok(got)) => {
                assert_eq!(want.states, got.states, "{label} {discipline:?} {name}");
                assert_eq!(
                    want.terminals, got.terminals,
                    "{label} {discipline:?} {name}"
                );
                assert_eq!(
                    want.terminal_fingerprints, got.terminal_fingerprints,
                    "{label} {discipline:?} {name}"
                );
                assert_eq!(
                    want.merge_edges, got.merge_edges,
                    "{label} {discipline:?} {name}"
                );
            }
            (Err(_), Err(_)) => {}
            (want, got) => {
                panic!("{label} {discipline:?} {name}: reference {want:?} but {name} {got:?}")
            }
        }
    }
    // The single-worker stealing engine never donates, so it is the
    // serial DFS in a different harness: `max_depth_seen` must match
    // too (multi-worker depth is legitimately schedule-shaped).
    if let (Ok(serial), Ok(stealing1)) = (&serial, &legs[0]) {
        assert_eq!(
            serial.max_depth_seen, stealing1.max_depth_seen,
            "{label} {discipline:?}: stealing-1 is exactly the serial DFS"
        );
    }
}

/// All five families × FIFO/LIFO × engines × worker counts.
#[test]
fn five_families_agree_across_engines_and_disciplines() {
    for discipline in [LinkDiscipline::Fifo, LinkDiscipline::Lifo] {
        let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
        assert_family_agrees(
            &init,
            || FullKnowledge::new(3),
            |r| satisfies_halting_deployment(r).is_satisfied(),
            discipline,
            "full-knowledge",
        );
        let init = InitialConfig::new(9, vec![0, 1, 2]).expect("valid");
        assert_family_agrees(
            &init,
            || LogSpace::new(3),
            |r| satisfies_halting_deployment(r).is_satisfied(),
            discipline,
            "log-space",
        );
        let init = InitialConfig::new(6, vec![0, 1, 3]).expect("valid");
        assert_family_agrees(
            &init,
            NoKnowledge::new,
            |r| satisfies_suspended_deployment(r).is_satisfied(),
            discipline,
            "relaxed",
        );
        let init = InitialConfig::new(8, vec![0, 1, 4, 5]).expect("valid");
        assert_family_agrees(
            &init,
            || PartialGathering::new(4),
            |r| satisfies_partial_gathering(r, 2).is_satisfied(),
            discipline,
            "partial-gathering g=2",
        );
        let init = InitialConfig::new(8, vec![0, 1, 2]).expect("valid");
        assert_family_agrees(
            &init,
            || PartialGathering::new(3),
            |r| satisfies_partial_gathering(r, 3).is_satisfied(),
            discipline,
            "partial-gathering g=3",
        );
    }
}

/// A random small instance: distinct homes on a ring of 6..=9 nodes.
fn random_instance(seed: u64) -> InitialConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = rng.gen_range(6..=9);
    let k = rng.gen_range(2..=3usize);
    let mut homes: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        homes.swap(i, j);
    }
    homes.truncate(k);
    InitialConfig::new(n, homes).expect("distinct homes in range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stealing order is scheduling noise: whatever subtrees get donated
    /// and whoever wins each visited-insert race, the report quadruple
    /// is a function of the instance alone.
    #[test]
    fn stealing_order_never_changes_the_report(seed in 0u64..1_000_000) {
        let init = random_instance(seed);
        let k = init.agent_count();
        let ring = Ring::new(&init, |_| FullKnowledge::new(k));
        let pred = |r: &Ring<FullKnowledge>| satisfies_halting_deployment(r).is_satisfied();
        let baseline = Explorer::new()
            .symmetry(SymmetryMode::Rotation)
            .run_serial(&ring, pred)
            .expect("serial exploration succeeds");
        for threads in [2usize, 3, 4] {
            let stolen = Explorer::new()
                .symmetry(SymmetryMode::Rotation)
                .threads(threads)
                .run(&ring, pred)
                .expect("stealing exploration succeeds");
            prop_assert_eq!(baseline.states, stolen.states, "seed {} threads {}", seed, threads);
            prop_assert_eq!(baseline.terminals, stolen.terminals, "seed {} threads {}", seed, threads);
            prop_assert_eq!(
                &baseline.terminal_fingerprints,
                &stolen.terminal_fingerprints,
                "seed {} threads {}", seed, threads
            );
            prop_assert_eq!(baseline.merge_edges, stolen.merge_edges, "seed {} threads {}", seed, threads);
        }
    }
}
