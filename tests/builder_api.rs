//! Contract tests for the `Deployment` builder / `Sweep` batch API:
//!
//! * builder runs are deterministic — identical configurations and seeds
//!   produce byte-identical reports;
//! * a user-defined `Scheduler` drives every algorithm to quiescence
//!   end-to-end;
//! * `Sweep` is deterministic for a fixed seed, across thread counts and
//!   against its sequential reference;
//! * `DeployReport` and `Measurement` survive a JSON round-trip (the
//!   workspace `serde` feature).

use ringdeploy::analysis::{summarize, Workload};
use ringdeploy::sim::scheduler::{Activation, Scheduler};
use ringdeploy::{Algorithm, DeployError, Deployment, InitialConfig, RunLimits, Schedule, Sweep};

fn clustered_init() -> InitialConfig {
    InitialConfig::new(36, vec![0, 1, 2, 3, 4, 5]).expect("valid")
}

#[test]
fn builder_runs_are_deterministic_on_identical_seeds() {
    let init = clustered_init();
    for algorithm in Algorithm::ALL {
        for schedule in [
            Schedule::RoundRobin,
            Schedule::Random(42),
            Schedule::Random(7),
            Schedule::OneAtATime,
            Schedule::DelayAgent(2),
        ] {
            let runs: Vec<_> = (0..2)
                .map(|_| {
                    Deployment::of(&init)
                        .algorithm(algorithm)
                        .schedule(schedule)
                        .expect("asynchronous preset")
                        .run()
                        .expect("builder run")
                })
                .collect();
            let (a, b) = (&runs[0], &runs[1]);
            assert_eq!(a.positions, b.positions, "{algorithm} {schedule}");
            assert_eq!(a.check, b.check);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.ideal_time, b.ideal_time);
            assert!(a.succeeded(), "{algorithm} {schedule}: {:?}", a.check);
        }
    }
}

/// A user-defined adversary: alternates between the lowest- and
/// highest-id enabled activation. Fair: a lone enabled agent is always
/// chosen either way.
struct ZigZag {
    flip: bool,
}

impl Scheduler for ZigZag {
    fn select(&mut self, enabled: &[Activation]) -> usize {
        self.flip = !self.flip;
        let key = |i: &usize| enabled[*i].agent.index();
        let range = 0..enabled.len();
        if self.flip {
            range.min_by_key(key).expect("non-empty")
        } else {
            range.max_by_key(key).expect("non-empty")
        }
    }

    fn name(&self) -> &'static str {
        "zig-zag"
    }
}

#[test]
fn user_defined_scheduler_runs_every_algorithm_to_quiescence() {
    let init = clustered_init();
    for algorithm in Algorithm::ALL {
        let report = Deployment::of(&init)
            .algorithm(algorithm)
            .scheduler(ZigZag { flip: false })
            .run()
            .expect("run completes");
        assert!(report.succeeded(), "{algorithm}: {:?}", report.check);
        assert_eq!(report.scheduler, "zig-zag");
        // The run really went through: every agent acted at least once.
        assert!(report.steps >= init.agent_count() as u64);
    }
}

#[test]
fn synchronous_is_a_mode_not_a_schedule() {
    let init = clustered_init();
    // The preset is rejected by the scheduler path...
    assert_eq!(
        Deployment::of(&init)
            .schedule(Schedule::Synchronous)
            .map(|_| ())
            .unwrap_err(),
        DeployError::SynchronousSchedule
    );
    // ...while the typed mode works and reports ideal time.
    let report = Deployment::of(&init)
        .algorithm(Algorithm::LogSpace)
        .synchronous()
        .run()
        .expect("lock-step run");
    assert!(report.succeeded());
    assert!(report.ideal_time.is_some());
}

#[test]
fn builder_knobs_compose() {
    let init = clustered_init();
    let report = Deployment::of(&init)
        .algorithm(Algorithm::Relaxed)
        .scheduler(ZigZag { flip: true })
        .limits(RunLimits::new(1_000_000, 1_000_000))
        .capture_trace(512)
        .run()
        .expect("run completes");
    assert!(report.succeeded());
    let trace = report.trace.as_ref().expect("trace requested");
    assert!(trace.len() <= 512);
    assert!(!trace.is_empty());
    // Phase metrics partition the run's activity.
    let total: u64 = report.phases.iter().map(|p| p.activations).sum();
    assert_eq!(total, report.steps);
}

fn demo_sweep() -> Sweep {
    Sweep::new()
        .algorithms(Algorithm::ALL)
        .workload(Workload::Random { n: 40, k: 5 })
        .workload(Workload::QuarterRing { n: 32, k: 8 })
        .random_per_seed()
        .seeds([3, 4])
}

#[test]
fn sweep_is_deterministic_under_a_fixed_seed() {
    let first = demo_sweep().threads(4).run().expect("sweep");
    let second = demo_sweep().threads(2).run().expect("sweep");
    let sequential = demo_sweep().run_sequential().expect("sweep");
    assert_eq!(first.len(), 3 * 2 * 2);
    for ((a, b), c) in first.iter().zip(&second).zip(&sequential) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.measurement, b.measurement);
        assert_eq!(a.measurement, c.measurement);
    }
    let cells = summarize(&first);
    assert!(cells.iter().all(|c| c.success_rate == 1.0));
}

#[cfg(feature = "serde")]
mod serde_round_trips {
    use super::*;
    use ringdeploy::analysis::Measurement;
    use ringdeploy::DeployReport;
    use ringdeploy_json::{FromJson, Json, ToJson};

    #[test]
    fn deploy_report_round_trips_through_json() {
        let init = clustered_init();
        let report = Deployment::of(&init)
            .algorithm(Algorithm::LogSpace)
            .schedule(Schedule::Random(5))
            .expect("preset")
            .capture_trace(64)
            .run()
            .expect("run");
        let text = report.to_json().to_string();
        let parsed =
            DeployReport::from_json(&Json::parse(&text).expect("valid JSON")).expect("decodes");
        assert_eq!(parsed.algorithm, report.algorithm);
        assert_eq!(parsed.scheduler, report.scheduler);
        assert_eq!(parsed.n, report.n);
        assert_eq!(parsed.k, report.k);
        assert_eq!(parsed.symmetry_degree, report.symmetry_degree);
        assert_eq!(parsed.check, report.check);
        assert_eq!(parsed.positions, report.positions);
        assert_eq!(parsed.ideal_time, report.ideal_time);
        assert_eq!(parsed.steps, report.steps);
        assert_eq!(parsed.metrics, report.metrics);
        assert_eq!(parsed.phases, report.phases);
        // The trace is observability state, deliberately not serialized.
        assert!(parsed.trace.is_none());
    }

    #[test]
    fn measurement_round_trips_through_json() {
        let rows = demo_sweep().run().expect("sweep");
        for row in rows {
            let text = row.measurement.to_json().to_string();
            let parsed =
                Measurement::from_json(&Json::parse(&text).expect("valid JSON")).expect("decodes");
            assert_eq!(parsed, row.measurement);
        }
    }

    #[test]
    fn schedule_json_covers_every_variant() {
        for schedule in [
            Schedule::RoundRobin,
            Schedule::Random(123),
            Schedule::OneAtATime,
            Schedule::DelayAgent(4),
            Schedule::Synchronous,
        ] {
            let text = schedule.to_json().to_string();
            let parsed =
                Schedule::from_json(&Json::parse(&text).expect("valid JSON")).expect("decodes");
            assert_eq!(parsed, schedule);
        }
    }
}
