//! Property tests for the target-spacing geometry (§3.1.1) — the piece of
//! shared arithmetic every algorithm's correctness rests on.

use proptest::prelude::*;
use ringdeploy::{is_uniform_spacing, SpacingPlan};

fn valid_nkb() -> impl Strategy<Value = (u64, u64, u64)> {
    (2u64..200)
        .prop_flat_map(|n| (Just(n), 2u64..=n.min(24)))
        .prop_flat_map(|(n, k)| {
            let divisors: Vec<u64> = (1..=k).filter(|b| k % b == 0 && n % b == 0).collect();
            (Just(n), Just(k), prop::sample::select(divisors))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Offsets are strictly increasing, intervals are floor/ceil of n/k,
    /// and the span closes exactly at n/b.
    #[test]
    fn offsets_partition_the_span((n, k, b) in valid_nkb()) {
        let plan = SpacingPlan::new(n, k, b).expect("valid");
        let tps = plan.targets_per_span();
        let floor = n / k;
        let ceil = floor + u64::from(n % k != 0);
        let mut prev = plan.offset(0);
        prop_assert_eq!(prev, 0);
        for j in 1..=tps {
            let cur = plan.offset(j);
            let gap = cur - prev;
            prop_assert!(gap == floor || gap == ceil, "gap {} at j={}", gap, j);
            prop_assert_eq!(gap, plan.interval(j - 1));
            prev = cur;
        }
        prop_assert_eq!(prev, plan.span());
    }

    /// `target_at` is the exact inverse of `offset` and rejects everything
    /// else.
    #[test]
    fn target_at_is_exact_inverse((n, k, b) in valid_nkb()) {
        let plan = SpacingPlan::new(n, k, b).expect("valid");
        let offsets: std::collections::BTreeMap<u64, u64> = (0..plan.targets_per_span())
            .map(|j| (plan.offset(j), j))
            .collect();
        for s in 0..plan.span() {
            prop_assert_eq!(plan.target_at(s), offsets.get(&s).copied(), "s={}", s);
        }
        prop_assert_eq!(plan.target_at(plan.span()), None);
    }

    /// The full-ring target set is always a uniform deployment, from any
    /// base anchor.
    #[test]
    fn all_targets_are_uniform((n, k, b) in valid_nkb(), anchor in 0u64..200) {
        let plan = SpacingPlan::new(n, k, b).expect("valid");
        let anchor = anchor % n;
        let targets = plan.all_targets(anchor);
        prop_assert_eq!(targets.len() as u64, k);
        let positions: Vec<usize> = targets.iter().map(|&t| t as usize).collect();
        prop_assert!(is_uniform_spacing(n as usize, &positions), "{:?}", positions);
        // All distinct.
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, k);
    }
}
