//! Engine-level semantics of the fault-injection subsystem
//! (DESIGN.md §0.10): crash-stop agents, 1-interval-connected dynamic
//! edges, exact reversibility of faulty steps, and the graceful-
//! degradation verdict.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy::sim::canonical::{canonical_fingerprint, plain_fingerprint};
use ringdeploy::sim::scheduler::{Activation, RoundRobin};
use ringdeploy::sim::{Behavior, DeploymentCheck, Ring, RunLimits};
use ringdeploy::{AgentId, FaultPlan, FullKnowledge, InitialConfig, LogSpace, NoKnowledge};

fn schedule_hash<B>(ring: &Ring<B>) -> u64
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let mut h = DefaultHasher::new();
    ring.hash_schedule_state(&mut h);
    h.finish()
}

/// Crash-stop: the agent stops acting, its token stays on the ring, and
/// the run still quiesces — with the predicate reporting the typed
/// degradation verdict instead of full satisfaction.
#[test]
fn crashed_agent_stops_moving_and_keeps_its_token() {
    let init = InitialConfig::new(8, vec![0, 1, 4])
        .expect("valid")
        .with_faults(FaultPlan::none().with_crash(AgentId(1), 2));
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(3));
    let out = ring
        .run(&mut RoundRobin::new(), RunLimits::default())
        .expect("faulty run quiesces");
    assert!(out.quiescent);
    assert!(ring.is_crashed(AgentId(1)));
    assert_eq!(ring.crashed_count(), 1);
    // The crash fired exactly at its activation index: agent 1 acted
    // `after + 1` times (the crashing activation consumes the agent),
    // never again after.
    assert_eq!(ring.activations_of(AgentId(1)), 3);
    let check = ringdeploy::sim::satisfies_halting_deployment(&ring);
    assert_eq!(
        check,
        DeploymentCheck::CrashDegraded {
            crashed: 1,
            survivors: 2
        }
    );
    assert!(check.is_crash_degraded());
    assert!(!check.is_satisfied());
}

/// 1-interval connectivity: at most one edge is ever down. `Down` moves
/// are enabled only while no edge is down, budget remains and the
/// target queue is non-empty; while an edge is down the only fault move
/// is `Restore`.
#[test]
fn edge_outages_respect_one_interval_connectivity() {
    let init = InitialConfig::new(6, vec![0, 3])
        .expect("valid")
        .with_faults(FaultPlan::none().with_edge_outages(2));
    let mut ring = Ring::new(&init, |_| NoKnowledge::new());
    assert_eq!(ring.outages_left(), 2);
    assert_eq!(ring.down_edge(), None);
    // Down candidates are exactly the nodes whose incoming queue holds
    // an arrival — initially the two home buffers.
    let downs: Vec<Activation> = ring
        .enabled()
        .into_iter()
        .filter(|a| a.is_fault())
        .collect();
    assert_eq!(downs.len(), 2, "one Down per non-empty queue: {downs:?}");
    ring.step(downs[0]);
    assert_eq!(ring.outages_left(), 1);
    assert!(ring.down_edge().is_some());
    // While an edge is down, Restore is the only fault move on offer.
    let faults: Vec<Activation> = ring
        .enabled()
        .into_iter()
        .filter(|a| a.is_fault())
        .collect();
    assert_eq!(faults, vec![Activation::fault_restore()]);
    ring.step(Activation::fault_restore());
    assert_eq!(ring.down_edge(), None);
    assert_eq!(ring.outages_left(), 1);
}

/// Faulty `apply`/`undo` is the identity on every observable — the same
/// contract `reversible.rs` pins for the fault-free engine, here walked
/// through schedules that interleave crashes and edge outages.
fn assert_fault_walk_reverses<B>(init: &InitialConfig, make: &dyn Fn() -> B, seed: u64, label: &str)
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ring = Ring::new(init, |_| make());
    let mut undos = Vec::new();
    let mut snapshots = Vec::new();
    for _ in 0..40 {
        let enabled = ring.enabled();
        if enabled.is_empty() {
            break;
        }
        snapshots.push((
            plain_fingerprint(&ring),
            canonical_fingerprint(&ring),
            schedule_hash(&ring),
            ring.enabled(),
        ));
        let pick = enabled[rng.gen_range(0..enabled.len())];
        undos.push(ring.apply(pick));
    }
    while let Some(undo) = undos.pop() {
        ring.undo(undo);
        let (plain, canonical, hash, enabled) = snapshots.pop().expect("one snapshot per apply");
        assert_eq!(plain_fingerprint(&ring), plain, "{label} seed {seed}");
        assert_eq!(
            canonical_fingerprint(&ring),
            canonical,
            "{label} seed {seed}"
        );
        assert_eq!(schedule_hash(&ring), hash, "{label} seed {seed}");
        assert_eq!(ring.enabled(), enabled, "{label} seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random faulty walks reverse exactly, for crash plans, edge plans
    /// and combined plans across three families.
    #[test]
    fn faulty_apply_undo_is_the_identity(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        let n = rng.gen_range(5..=8usize);
        let k = rng.gen_range(2..=3usize);
        let mut homes: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            homes.swap(i, j);
        }
        homes.truncate(k);
        let plan = FaultPlan::none()
            .with_crash(AgentId(rng.gen_range(0..k)), rng.gen_range(0..4))
            .with_edge_outages(rng.gen_range(0..3));
        let init = InitialConfig::new(n, homes)
            .expect("distinct homes")
            .with_faults(plan);
        assert_fault_walk_reverses(&init, &|| FullKnowledge::new(k), seed, "algo1");
        assert_fault_walk_reverses(&init, &|| LogSpace::new(k), seed, "algo2");
        assert_fault_walk_reverses(&init, &NoKnowledge::new, seed, "relaxed");
    }
}

/// The empty plan is inert: no fault moves in the enabled set, a zero
/// seal word, and state identity bit-identical to a ring that never
/// heard of faults.
#[test]
fn empty_plan_is_bit_identical_to_the_default_ring() {
    let plain = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    let explicit = plain.clone().with_faults(FaultPlan::none());
    let a = Ring::new(&plain, |_| FullKnowledge::new(3));
    let b = Ring::new(&explicit, |_| FullKnowledge::new(3));
    assert!(b.fault_plan().is_empty());
    assert_eq!(b.fault_seal_word(), 0);
    assert_eq!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    assert_eq!(plain_fingerprint(&a), plain_fingerprint(&b));
    assert_eq!(schedule_hash(&a), schedule_hash(&b));
    assert_eq!(a.enabled(), b.enabled());
    assert!(b.enabled().iter().all(|act| !act.is_fault()));
}
