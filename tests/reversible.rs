//! Property tests for the reversible engine: `Ring::apply` followed by
//! `Ring::undo` is the **identity** on every observable of the ring —
//! plain and canonical fingerprints, the full schedule-state hash, the
//! enabled-activation slice, metrics, phase tallies and the step counter
//! — across FIFO and LIFO link disciplines and all three of the paper's
//! algorithm families; and `apply` drives the ring through **bit-exactly
//! the same** trajectory as the irreversible `step`.
//!
//! These are the invariants the clone-free exhaustive explorer stands on:
//! its serial DFS revisits a parent by undoing, never by cloning, so any
//! residue an undo left behind would silently corrupt every sibling
//! subtree explored after it.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy::sim::canonical::{canonical_fingerprint, plain_fingerprint};
use ringdeploy::sim::scheduler::{Activation, Random};
use ringdeploy::sim::{Behavior, LinkDiscipline, Metrics, PhaseTally, Ring, Scheduler};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge};

/// Everything a round-trip must restore bit-exactly.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    plain_fp: u64,
    canonical_fp: u64,
    schedule_hash: u64,
    enabled: Vec<Activation>,
    steps: u64,
    metrics: Metrics,
    phases: Vec<PhaseTally>,
}

fn snapshot<B>(ring: &Ring<B>) -> Snapshot
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let mut h = DefaultHasher::new();
    ring.hash_schedule_state(&mut h);
    Snapshot {
        plain_fp: plain_fingerprint(ring),
        canonical_fp: canonical_fingerprint(ring),
        schedule_hash: h.finish(),
        enabled: ring.enabled_activations().to_vec(),
        steps: ring.steps(),
        metrics: ring.metrics().clone(),
        phases: ring.phase_tallies().to_vec(),
    }
}

/// A random small instance: distinct homes on a ring of 4..=8 nodes.
fn random_instance(seed: u64) -> InitialConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = rng.gen_range(4..=8);
    let k = rng.gen_range(2..=n.min(4));
    let mut homes: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        homes.swap(i, j);
    }
    homes.truncate(k);
    InitialConfig::new(n, homes).expect("distinct homes in range")
}

/// Drives one instance to quiescence (bounded), asserting at every state:
///
/// * apply→undo of **every** enabled activation is the identity on the
///   [`Snapshot`];
/// * advancing via `apply` matches a twin advanced via `step` bit-exactly;
/// * undoing the whole recorded run restores the initial snapshot.
fn check_reversible<B>(
    make: &dyn Fn() -> Ring<B>,
    discipline: LinkDiscipline,
    seed: u64,
    label: &str,
) -> Result<(), TestCaseError>
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let prepare = || {
        let mut ring = make();
        ring.set_link_discipline(discipline);
        ring
    };
    let mut ring = prepare();
    let mut twin = prepare();
    let initial = snapshot(&ring);
    let mut undos = Vec::new();
    let mut scheduler = Random::seeded(seed ^ 0x5bd1_e995);
    // Generous bound: the paper's algorithms finish well within it on
    // these instances; LIFO ablations may livelock, which the bound cuts.
    for _ in 0..600 {
        if ring.enabled_activations().is_empty() {
            break;
        }
        let before = snapshot(&ring);
        let acts: Vec<Activation> = ring.enabled_activations().to_vec();
        for &act in &acts {
            let undo = ring.apply(act);
            ring.undo(undo);
            let after = snapshot(&ring);
            prop_assert_eq!(
                &before,
                &after,
                "{}: apply/undo of {:?} is not the identity",
                label,
                act
            );
        }
        let chosen = scheduler.select(ring.enabled_activations());
        let act = ring.enabled_activations()[chosen];
        undos.push(ring.apply(act));
        twin.step(act);
        prop_assert_eq!(
            snapshot(&ring),
            snapshot(&twin),
            "{}: apply diverged from step after {:?}",
            label,
            act
        );
    }
    while let Some(undo) = undos.pop() {
        ring.undo(undo);
    }
    prop_assert_eq!(
        snapshot(&ring),
        initial,
        "{}: unwinding the whole run did not restore the initial state",
        label
    );
    Ok(())
}

fn check_all_families(seed: u64, discipline: LinkDiscipline) -> Result<(), TestCaseError> {
    let init = random_instance(seed);
    let k = init.agent_count();
    let label = format!(
        "n={} k={} {:?}",
        init.ring_size(),
        init.agent_count(),
        discipline
    );
    check_reversible(
        &|| Ring::new(&init, |_| FullKnowledge::new(k)),
        discipline,
        seed,
        &format!("algo1 {label}"),
    )?;
    check_reversible(
        &|| Ring::new(&init, |_| LogSpace::new(k)),
        discipline,
        seed,
        &format!("algo2 {label}"),
    )?;
    check_reversible(
        &|| Ring::new(&init, |_| NoKnowledge::new()),
        discipline,
        seed,
        &format!("relaxed {label}"),
    )?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FIFO (the paper's model): all three algorithm families.
    #[test]
    fn apply_undo_is_identity_under_fifo(seed in 0u64..1_000_000) {
        check_all_families(seed, LinkDiscipline::Fifo)?;
    }

    /// LIFO ablation: overtaking pushes displace queue heads, exercising
    /// the displacement bookkeeping `StepUndo` must reverse.
    #[test]
    fn apply_undo_is_identity_under_lifo(seed in 0u64..1_000_000) {
        check_all_families(seed, LinkDiscipline::Lifo)?;
    }
}

/// Broadcast deliveries that wake suspended receivers are the subtlest
/// enabled-set edit; make sure the suite genuinely exercises them:
/// Algorithm 2's leader election broadcasts on every run of a clustered
/// instance, and every step of every run must round-trip exactly.
#[test]
fn undo_reverses_broadcast_wakeups() {
    let mut broadcasts_seen = 0u64;
    let init = InitialConfig::new(8, vec![0, 1, 2]).expect("valid");
    for seed in 0..10u64 {
        let mut ring = Ring::new(&init, |_| LogSpace::new(3));
        let mut scheduler = Random::seeded(seed);
        for _ in 0..600 {
            if ring.enabled_activations().is_empty() {
                break;
            }
            let before = snapshot(&ring);
            let chosen = scheduler.select(ring.enabled_activations());
            let act = ring.enabled_activations()[chosen];
            let undo = ring.apply(act);
            ring.undo(undo);
            assert_eq!(before, snapshot(&ring), "seed {seed}");
            ring.step(act);
        }
        broadcasts_seen += ring.metrics().messages_sent();
    }
    assert!(
        broadcasts_seen > 0,
        "Algorithm 2 must broadcast somewhere in 10 clustered runs for this test to bite"
    );
}
