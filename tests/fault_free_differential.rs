//! Empty-`FaultPlan` differential: the fault-injection subsystem must
//! be **invisible** when no faults are planned. An instance carrying an
//! explicitly-constructed empty plan must be bit-identical to the plain
//! instance on every observable the verification stack reports — seeded
//! random trajectories (canonical and plain fingerprints, the full
//! schedule-state hash, the enabled set), the exhaustive explorer's
//! report quadruple under `ExploreEngine::{Reference, Serial,
//! Stealing}`, and the daemon's cache identity (canonical `InstanceKey`
//! bytes and FNV fingerprints) — across all five problem families and
//! both link disciplines.
//!
//! This is the backward-compatibility pin of DESIGN.md §0.10: every
//! pre-fault cache entry, witness and fingerprint stays valid.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy::analysis::key::InstanceKey;
use ringdeploy::core::{explore_terminal_ok, ExploreEngine};
use ringdeploy::sim::canonical::{canonical_fingerprint, plain_fingerprint};
use ringdeploy::sim::explore::{ExploreReport, Explorer, SymmetryMode};
use ringdeploy::sim::scheduler::Random;
use ringdeploy::sim::{
    satisfies_halting_deployment, satisfies_partial_gathering, satisfies_suspended_deployment,
    Behavior, LinkDiscipline, RunLimits,
};
use ringdeploy::{
    Algorithm, FaultPlan, FullKnowledge, InitialConfig, LogSpace, NoKnowledge, PartialGathering,
    Ring, Schedule, Sweep, Workload,
};

fn schedule_hash<B>(ring: &Ring<B>) -> u64
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let mut h = DefaultHasher::new();
    ring.hash_schedule_state(&mut h);
    h.finish()
}

/// Walks one seeded random trajectory (bounded — LIFO overtaking can
/// diverge for some families) and returns the full state identity:
/// plain fingerprint, canonical fingerprint, schedule hash, enabled set.
fn trajectory_identity<B>(
    init: &InitialConfig,
    make: &dyn Fn() -> B,
    discipline: LinkDiscipline,
    seed: u64,
) -> (u64, u64, u64, usize)
where
    B: Behavior + Clone + Hash,
    B::Message: Clone + Hash,
{
    let mut ring = Ring::new(init, |_| make());
    ring.set_link_discipline(discipline);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..80 {
        let enabled = ring.enabled();
        if enabled.is_empty() {
            break;
        }
        let pick = enabled[rng.gen_range(0..enabled.len())];
        ring.step(pick);
    }
    (
        plain_fingerprint(&ring),
        canonical_fingerprint(&ring),
        schedule_hash(&ring),
        ring.enabled().len(),
    )
}

/// Explores `init` exhaustively under one engine.
fn explore_report<B>(
    init: &InitialConfig,
    make: &(dyn Fn() -> B + Sync),
    pred: &(dyn Fn(&Ring<B>) -> bool + Sync),
    engine: ExploreEngine,
    label: &str,
) -> ExploreReport
where
    B: Behavior + Clone + Hash + Send + Sync,
    B::Message: Clone + Hash + Send + Sync,
{
    let ring = Ring::new(init, |_| make());
    let explorer = Explorer::new().symmetry(SymmetryMode::Rotation);
    let result = match engine {
        ExploreEngine::Reference => explorer.run_serial_reference(&ring, pred),
        ExploreEngine::Serial => explorer.run_serial(&ring, pred),
        ExploreEngine::Stealing => explorer.threads(2).run(&ring, pred),
    };
    result.unwrap_or_else(|e| panic!("{label} {engine:?}: exploration failed: {e}"))
}

/// The full differential for one family: trajectories under both
/// disciplines and exploration under all three engines must not observe
/// whether the empty plan was attached explicitly.
fn assert_empty_plan_invisible<B>(
    plain: &InitialConfig,
    make: &(dyn Fn() -> B + Sync),
    pred: &(dyn Fn(&Ring<B>) -> bool + Sync),
    label: &str,
) where
    B: Behavior + Clone + Hash + Send + Sync,
    B::Message: Clone + Hash + Send + Sync,
{
    let explicit = plain.clone().with_faults(FaultPlan::none());
    for discipline in [LinkDiscipline::Fifo, LinkDiscipline::Lifo] {
        for seed in [3u64, 17, 99] {
            let a = trajectory_identity(plain, make, discipline, seed);
            let b = trajectory_identity(&explicit, make, discipline, seed);
            assert_eq!(a, b, "{label} {discipline:?} seed {seed}");
        }
    }
    for engine in [
        ExploreEngine::Reference,
        ExploreEngine::Serial,
        ExploreEngine::Stealing,
    ] {
        let a = explore_report(plain, make, pred, engine, label);
        let b = explore_report(&explicit, make, pred, engine, label);
        assert_eq!(a.states, b.states, "{label} {engine:?}");
        assert_eq!(a.terminals, b.terminals, "{label} {engine:?}");
        assert_eq!(
            a.terminal_fingerprints, b.terminal_fingerprints,
            "{label} {engine:?}"
        );
        assert_eq!(a.merge_edges, b.merge_edges, "{label} {engine:?}");
    }
}

/// All five families: the explorer-differential instances, each checked
/// with its own terminal predicate (wrapped in [`explore_terminal_ok`]'s
/// contract: fault-free instances never degrade, so plain satisfaction
/// is the correct predicate on both sides).
#[test]
fn five_families_cannot_observe_an_empty_plan() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    assert_empty_plan_invisible(
        &init,
        &|| FullKnowledge::new(3),
        &|r| satisfies_halting_deployment(r).is_satisfied(),
        "full-knowledge",
    );
    let init = InitialConfig::new(9, vec![0, 1, 2]).expect("valid");
    assert_empty_plan_invisible(
        &init,
        &|| LogSpace::new(3),
        &|r| satisfies_halting_deployment(r).is_satisfied(),
        "log-space",
    );
    let init = InitialConfig::new(6, vec![0, 1, 3]).expect("valid");
    assert_empty_plan_invisible(
        &init,
        &NoKnowledge::new,
        &|r| satisfies_suspended_deployment(r).is_satisfied(),
        "relaxed",
    );
    let init = InitialConfig::new(8, vec![0, 1, 4, 5]).expect("valid");
    assert_empty_plan_invisible(
        &init,
        &|| PartialGathering::new(4),
        &|r| satisfies_partial_gathering(r, 2).is_satisfied(),
        "partial-gathering g=2",
    );
    let init = InitialConfig::new(8, vec![0, 1, 2]).expect("valid");
    assert_empty_plan_invisible(
        &init,
        &|| PartialGathering::new(3),
        &|r| satisfies_partial_gathering(r, 3).is_satisfied(),
        "partial-gathering g=3",
    );
}

/// The explorer's fault-aware terminal acceptance collapses to plain
/// satisfaction on fault-free instances ([`explore_terminal_ok`] is
/// `is_satisfied` unless the check is the crash-degraded variant, which
/// fault-free runs never produce).
#[test]
fn fault_free_terminals_never_degrade() {
    let init = InitialConfig::new(8, vec![0, 1, 4]).expect("valid");
    for seed in 0..20u64 {
        let mut ring = Ring::new(&init, |_| FullKnowledge::new(3));
        let out = ring
            .run(&mut Random::seeded(seed), RunLimits::for_instance(8, 3))
            .expect("run");
        assert!(out.quiescent, "seed {seed}");
        let check = satisfies_halting_deployment(&ring);
        assert!(!check.is_crash_degraded(), "seed {seed}");
        assert_eq!(
            explore_terminal_ok(&check),
            check.is_satisfied(),
            "seed {seed}"
        );
    }
}

/// Daemon cache identity: attaching an empty plan to an `InstanceKey`
/// changes neither its canonical bytes nor its FNV fingerprint — every
/// pre-fault cache entry stays addressable, and fault-free jobs keep
/// hitting entries computed before the fault subsystem existed.
#[test]
fn empty_plan_preserves_daemon_cache_keys() {
    let sweep = Sweep::new()
        .algorithms([
            Algorithm::FullKnowledge,
            Algorithm::LogSpace,
            Algorithm::Relaxed,
            Algorithm::partial_gathering(2),
            Algorithm::partial_gathering(3),
        ])
        .workload(Workload::Random { n: 16, k: 4 })
        .schedule(Schedule::RoundRobin)
        .seeds([0, 7]);
    let cells = sweep.cells().expect("cells");
    assert!(!cells.is_empty());
    for cell in &cells {
        let bare = InstanceKey::for_sweep(cell);
        let tagged = InstanceKey::for_sweep(cell).with_faults(FaultPlan::none());
        assert_eq!(bare.canonical(), tagged.canonical());
        assert_eq!(bare.fingerprint(), tagged.fingerprint());
        assert!(!tagged.canonical().contains("faults"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random instances: a sampled run's outcome quadruple and terminal
    /// identity never depend on whether the empty plan was attached
    /// explicitly.
    #[test]
    fn empty_plan_is_invisible_on_random_instances(seed in 0u64..1_000_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(6..=9usize);
        let k = rng.gen_range(2..=3usize);
        let mut homes: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            homes.swap(i, j);
        }
        homes.truncate(k);
        let plain = InitialConfig::new(n, homes).expect("distinct homes");
        let explicit = plain.clone().with_faults(FaultPlan::none());
        let run = |init: &InitialConfig| {
            let mut ring = Ring::new(init, |_| FullKnowledge::new(k));
            let out = ring
                .run(&mut Random::seeded(seed), RunLimits::for_instance(n, k))
                .expect("run");
            (
                out.quiescent,
                out.steps,
                out.metrics.total_moves(),
                canonical_fingerprint(&ring),
                schedule_hash(&ring),
            )
        };
        prop_assert_eq!(run(&plain), run(&explicit), "seed {}", seed);
    }
}
