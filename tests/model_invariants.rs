//! Invariants of the system model itself (paper §2.1 / Table 2), checked
//! through the observer-side configuration snapshots.

use ringdeploy::sim::scheduler::Random;
use ringdeploy::sim::{Place, RunLimits};
use ringdeploy::{FullKnowledge, InitialConfig, LogSpace, NoKnowledge, Ring};

#[test]
fn initial_configuration_matches_paper() {
    // C0: all agents in the incoming buffers of their distinct homes,
    // no tokens anywhere, no messages.
    let init = InitialConfig::new(10, vec![1, 4, 8]).expect("valid");
    let ring: Ring<FullKnowledge> = Ring::new(&init, |_| FullKnowledge::new(3));
    let c = ring.configuration();
    assert_eq!(c.total_tokens(), 0);
    assert!(c.occupied_nodes().is_empty());
    for (i, a) in c.agents.iter().enumerate() {
        assert!(a.token_held);
        assert_eq!(a.pending_messages, 0);
        match a.place {
            Place::InTransit { to } => assert_eq!(to.index(), init.homes()[i]),
            Place::Staying { .. } => panic!("agent {i} must start in a buffer"),
        }
    }
    for (node, q) in c.links.iter().enumerate() {
        if init.homes().contains(&node) {
            assert_eq!(q.len(), 1);
        } else {
            assert!(q.is_empty());
        }
    }
}

#[test]
fn no_overtaking_on_fifo_links() {
    // Run Algorithm 2 (lots of concurrent circulation) with tracing and
    // verify from the trace that, for every link, the arrival order equals
    // the entry order — agents never overtake.
    use ringdeploy::sim::Event;
    let init = InitialConfig::new(20, vec![0, 1, 5, 9, 13]).expect("valid");
    let mut ring = Ring::new(&init, |_| LogSpace::new(5));
    ring.enable_trace(1_000_000);
    ring.run(&mut Random::seeded(8), RunLimits::for_instance(20, 5))
        .expect("run");
    let trace = ring.trace().expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "trace must be complete for this check");
    // Entry order per link (from Moved events), arrival order per node
    // (from Activated{arrived} events). Skip initial buffer occupancy by
    // pre-seeding with the homes.
    let n = 20;
    let mut entered: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &h) in init.homes().iter().enumerate() {
        entered[h].push(i);
    }
    let mut arrived: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in trace.events() {
        match *e {
            Event::Moved { agent, to, .. } => entered[to.index()].push(agent.index()),
            Event::Activated {
                agent,
                node,
                arrived: true,
                ..
            } => arrived[node.index()].push(agent.index()),
            _ => {}
        }
    }
    for v in 0..n {
        // Every arrival sequence must be a prefix-respecting match of the
        // entry sequence (arrivals happen in entry order).
        assert!(
            arrived[v].len() <= entered[v].len(),
            "node {v}: more arrivals than entries"
        );
        assert_eq!(
            arrived[v][..],
            entered[v][..arrived[v].len()],
            "node {v}: overtaking detected"
        );
    }
}

#[test]
fn snapshot_components_stay_consistent_midrun() {
    // At every prefix of a run: staying sets P, link queues Q and agent
    // places S agree; token count T never exceeds k and never decreases.
    let init = InitialConfig::new(14, vec![0, 3, 7]).expect("valid");
    let mut ring = Ring::new(&init, |_| NoKnowledge::new());
    let mut last_tokens = 0u32;
    for _ in 0..2_000 {
        let enabled = ring.enabled();
        if enabled.is_empty() {
            break;
        }
        ring.step(enabled[0]);
        let c = ring.configuration();
        let tokens = c.total_tokens();
        assert!(tokens >= last_tokens, "tokens are unremovable");
        assert!(tokens <= 3);
        last_tokens = tokens;
        for (i, a) in c.agents.iter().enumerate() {
            match a.place {
                Place::Staying { at } => {
                    assert!(
                        c.staying[at.index()].iter().any(|x| x.index() == i),
                        "P and S disagree for staying agent {i}"
                    );
                }
                Place::InTransit { to } => {
                    assert!(
                        c.links[to.index()].iter().any(|x| x.index() == i),
                        "Q and S disagree for in-transit agent {i}"
                    );
                }
            }
        }
        // No agent appears twice across P and Q.
        let mut seen = [0u32; 3];
        for p in &c.staying {
            for a in p {
                seen[a.index()] += 1;
            }
        }
        for q in &c.links {
            for a in q {
                seen[a.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "agent multiplicity violated");
    }
}

#[test]
fn halted_agents_ignore_messages() {
    // Deliver a message to a halted Algorithm 1 agent: it must never wake.
    use ringdeploy::sim::{Action, Behavior, Idle, Observation};
    struct HaltThenNothing {
        acted: bool,
    }
    impl Behavior for HaltThenNothing {
        type Message = u8;
        fn act(&mut self, _obs: &Observation<'_, u8>) -> Action<u8> {
            assert!(!self.acted, "halted agent was re-activated");
            self.acted = true;
            Action::staying(Idle::Halted).with_token_release(true)
        }
        fn memory_bits(&self) -> usize {
            1
        }
    }
    struct Pinger {
        state: u8,
    }
    impl Behavior for Pinger {
        type Message = u8;
        fn act(&mut self, obs: &Observation<'_, u8>) -> Action<u8> {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::moving().with_token_release(true)
                }
                1 => {
                    if obs.has_token() && obs.has_staying_agent() {
                        self.state = 2;
                        Action::staying(Idle::Halted).with_broadcast(42)
                    } else {
                        Action::moving()
                    }
                }
                _ => Action::halting(),
            }
        }
        fn memory_bits(&self) -> usize {
            2
        }
    }
    // Heterogeneous behaviors via an enum wrapper.
    enum Either {
        Halt(HaltThenNothing),
        Ping(Pinger),
    }
    impl Behavior for Either {
        type Message = u8;
        fn act(&mut self, obs: &Observation<'_, u8>) -> Action<u8> {
            match self {
                Either::Halt(b) => b.act(obs),
                Either::Ping(b) => b.act(obs),
            }
        }
        fn memory_bits(&self) -> usize {
            1
        }
    }
    let init = InitialConfig::new(6, vec![0, 3]).expect("valid");
    let mut ring = Ring::new(&init, |id| {
        if id.index() == 0 {
            Either::Halt(HaltThenNothing { acted: false })
        } else {
            Either::Ping(Pinger { state: 0 })
        }
    });
    let out = ring
        .run(
            &mut ringdeploy::sim::scheduler::RoundRobin::new(),
            RunLimits::default(),
        )
        .expect("run");
    assert!(out.quiescent);
    // The halted agent received a message that remains pending forever.
    assert_eq!(ring.inbox_len(ringdeploy::sim::AgentId(0)), 1);
}
