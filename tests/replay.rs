//! Record/replay: a recorded asynchronous execution replays to an
//! identical final configuration, metrics included.

use ringdeploy::sim::scheduler::{Random, Recording, Replay};
use ringdeploy::sim::RunLimits;
use ringdeploy::{InitialConfig, LogSpace, NoKnowledge, Ring};

#[test]
fn algo2_run_replays_exactly() {
    let init = InitialConfig::new(20, vec![0, 1, 5, 9, 13]).expect("valid");

    let mut recording = Recording::new(Random::seeded(321));
    let mut original = Ring::new(&init, |_| LogSpace::new(5));
    let out1 = original
        .run(&mut recording, RunLimits::for_instance(20, 5))
        .expect("run");

    let mut replay = Replay::new(recording.into_log());
    let mut copy = Ring::new(&init, |_| LogSpace::new(5));
    let out2 = copy
        .run(&mut replay, RunLimits::for_instance(20, 5))
        .expect("replay");

    assert_eq!(out1.steps, out2.steps);
    assert_eq!(out1.metrics, out2.metrics);
    assert_eq!(original.staying_positions(), copy.staying_positions());
    assert_eq!(original.tokens(), copy.tokens());
    assert_eq!(original.configuration(), copy.configuration());
}

#[test]
fn relaxed_run_replays_exactly() {
    let init = InitialConfig::new(27, vec![0, 11, 12, 15, 16, 19, 20, 23, 24]).expect("valid");
    let k = init.agent_count();

    let mut recording = Recording::new(Random::seeded(99));
    let mut original = Ring::new(&init, |_| NoKnowledge::new());
    let out1 = original
        .run(&mut recording, RunLimits::for_instance(27, k))
        .expect("run");

    let mut replay = Replay::new(recording.into_log());
    let mut copy = Ring::new(&init, |_| NoKnowledge::new());
    let out2 = copy
        .run(&mut replay, RunLimits::for_instance(27, k))
        .expect("replay");

    assert_eq!(out1.metrics, out2.metrics);
    assert_eq!(original.staying_positions(), copy.staying_positions());
}

#[test]
fn truncated_replay_reports_typed_exhaustion() {
    let init = InitialConfig::new(12, vec![0, 4]).expect("valid");
    let mut recording = Recording::new(Random::seeded(5));
    let mut original = Ring::new(&init, |_| LogSpace::new(2));
    original
        .run(&mut recording, RunLimits::for_instance(12, 2))
        .expect("run");

    // Replay only half the log: the run cannot finish and the replay
    // scheduler reports exhaustion as a typed error instead of panicking
    // (or silently improvising).
    let mut log = recording.into_log();
    log.truncate(log.len() / 2);
    let half = log.len();
    let mut replay = Replay::new(log);
    let mut copy = Ring::new(&init, |_| LogSpace::new(2));
    let err = copy
        .run(&mut replay, RunLimits::for_instance(12, 2))
        .expect_err("truncated replay cannot reach quiescence");
    assert_eq!(
        err,
        ringdeploy::sim::SimError::ScheduleExhausted {
            consumed: half as u64
        }
    );
    // The replayed prefix itself is exact: every logged choice was used.
    assert_eq!(replay.position(), half);
    assert_eq!(replay.remaining(), 0);
}
