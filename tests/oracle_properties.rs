//! Independent verification of the offline-optimal oracle
//! (`analysis::oracle_moves`), which now underwrites the bound
//! certificates' competitive ratios: if the oracle over-estimated the
//! offline optimum, every reported ratio would silently flatter the
//! algorithms.
//!
//! The oracle prunes its search with two classical reductions:
//!
//! * **order-preserving assignment** — for sorted agents and sorted
//!   targets only the `k` cyclic shifts need be tried, not all `k!`
//!   permutations;
//! * **candidate rotations** — only target-pattern rotations `δ` making
//!   some agent's cost zero can be optimal, cutting `δ ∈ 0..n` down to
//!   ≤ k² candidates.
//!
//! This suite checks both reductions against a brute force that applies
//! *neither*: all `n` rotations of the canonical gap pattern × all `k!`
//! assignments (`n ≤ 8, k ≤ 3` keeps that to ≤ 48·6 evaluations). A
//! second, pattern-unrestricted brute force additionally enumerates
//! every uniform gap pattern, pinning the `k | n` exactness claim: when
//! the gaps are all equal the canonical pattern is the *only* pattern,
//! so the oracle is the true unrestricted optimum.

use proptest::prelude::*;
use proptest::TestCaseError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ringdeploy::analysis::{oracle_moves, oracle_moves_brute_force};
use ringdeploy::{InitialConfig, SpacingPlan};

/// All permutations of `0..k` (k ≤ 3 ⇒ at most 6), built recursively.
fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            go(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut (0..k).collect(), &mut out);
    out
}

/// Minimal forward cost over all `n` rotations of the **canonical**
/// gap pattern (the one the oracle and the paper's algorithms use) ×
/// **all `k!` assignments** — the oracle's claim with both of its
/// reductions stripped.
fn canonical_pattern_full_brute(init: &InitialConfig) -> u64 {
    let n = init.ring_size() as u64;
    let k = init.agent_count();
    let mut agents: Vec<u64> = init.homes().iter().map(|&h| h as u64).collect();
    agents.sort_unstable();
    let plan = SpacingPlan::new(n, k as u64, 1).expect("k ≤ n");
    let offsets: Vec<u64> = (0..k as u64).map(|j| plan.offset(j)).collect();
    let perms = permutations(k);
    let mut best = u64::MAX;
    for delta in 0..n {
        for perm in &perms {
            let cost: u64 = (0..k)
                .map(|i| {
                    let target = (delta + offsets[perm[i]]) % n;
                    (target + n - agents[i]) % n
                })
                .sum();
            best = best.min(cost);
        }
    }
    best
}

/// The true unrestricted optimum: every uniform gap pattern (each way of
/// choosing which `n mod k` gaps are long) × every rotation × every
/// assignment.
fn unrestricted_brute(init: &InitialConfig) -> u64 {
    let n = init.ring_size();
    let k = init.agent_count();
    let mut agents: Vec<u64> = init.homes().iter().map(|&h| h as u64).collect();
    agents.sort_unstable();
    let floor = n / k;
    let r = n % k;
    let perms = permutations(k);
    let mut best = u64::MAX;
    // Each subset of gap positions of size r gets the long (ceil) gap.
    for mask in 0u32..(1 << k) {
        if mask.count_ones() as usize != r {
            continue;
        }
        let mut offsets = Vec::with_capacity(k);
        let mut acc = 0u64;
        for j in 0..k {
            offsets.push(acc);
            acc += floor as u64 + u64::from(mask & (1 << j) != 0);
        }
        assert_eq!(acc, n as u64, "gaps must tile the ring");
        for delta in 0..n as u64 {
            for perm in &perms {
                let cost: u64 = (0..k)
                    .map(|i| {
                        let target = (delta + offsets[perm[i]]) % n as u64;
                        (target + n as u64 - agents[i]) % n as u64
                    })
                    .sum();
                best = best.min(cost);
            }
        }
    }
    best
}

/// A random tiny instance: distinct homes, `n ≤ 8`, `k ≤ 3`.
fn tiny_instance(seed: u64) -> InitialConfig {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = rng.gen_range(2..=8);
    let k = rng.gen_range(1..=n.min(3));
    let mut homes: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        homes.swap(i, j);
    }
    homes.truncate(k);
    InitialConfig::new(n, homes).expect("distinct homes in range")
}

fn check_oracle(init: &InitialConfig) -> Result<(), TestCaseError> {
    let n = init.ring_size();
    let k = init.agent_count();
    let fast = oracle_moves(init).total_moves;
    let canonical = canonical_pattern_full_brute(init);
    let unrestricted = unrestricted_brute(init);
    // The oracle's two reductions (cyclic shifts only, candidate
    // rotations only) must lose nothing against the reduction-free
    // search of the same pattern space.
    prop_assert_eq!(
        fast,
        canonical,
        "n={} homes={:?}: oracle {} != canonical-pattern brute {}",
        n,
        init.homes(),
        fast,
        canonical
    );
    // Restricting to the canonical pattern is an upper bound on the
    // unrestricted optimum…
    prop_assert!(
        fast >= unrestricted,
        "n={} homes={:?}: oracle {} beats the true optimum {}",
        n,
        init.homes(),
        fast,
        unrestricted
    );
    // …and exact when k | n (the pattern is then unique).
    if n.is_multiple_of(k) {
        prop_assert_eq!(
            fast,
            unrestricted,
            "n={} homes={:?}: k | n must be exact ({} vs {})",
            n,
            init.homes(),
            fast,
            unrestricted
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The oracle equals the reduction-free brute force on its own
    /// pattern space, never beats the unrestricted optimum, and is exact
    /// whenever `k | n`.
    #[test]
    fn oracle_matches_brute_force_optimum(seed in 0u64..1_000_000) {
        check_oracle(&tiny_instance(seed))?;
    }
}

/// Exhaustive (not sampled) sweep of every instance with `n ≤ 7, k ≤ 3`:
/// the full cross-check at a size where enumerating all home sets is
/// cheap — a few hundred instances, each against both brute forces.
#[test]
fn oracle_exact_on_every_tiny_instance() {
    fn subsets(
        n: usize,
        k: usize,
        from: usize,
        acc: &mut Vec<usize>,
        visit: &mut dyn FnMut(&[usize]),
    ) {
        if acc.len() == k {
            visit(acc);
            return;
        }
        for h in from..n {
            acc.push(h);
            subsets(n, k, h + 1, acc, visit);
            acc.pop();
        }
    }
    let mut instances = 0usize;
    for n in 2..=7usize {
        for k in 1..=n.min(3) {
            subsets(n, k, 0, &mut Vec::new(), &mut |homes| {
                let init = InitialConfig::new(n, homes.to_vec()).expect("valid");
                check_oracle(&init).unwrap_or_else(|e| panic!("n={n} homes={homes:?}: {e:?}"));
                instances += 1;
            });
        }
    }
    assert!(instances > 100, "the sweep must actually cover the space");
}

/// Pins the oracle labels of the `adversary_scale` benchmark instances
/// (`BENCH_adversary.json`). The symmetric `l = k` rows start out
/// *already uniform* — equally spaced homes — so their `oracle_moves: 0`
/// is the correct offline optimum and the null competitive ratio means
/// the denominator is legitimately zero, not that data is missing. The
/// periodic-but-clustered and aperiodic rows must keep their nonzero
/// optima, so the benchmark always reports at least one real ratio per
/// symmetry tier below `l = k`.
#[test]
fn bench_instance_oracle_labels_are_pinned() {
    // l = k = 4: already uniform, optimum genuinely zero.
    for (n, homes) in [(12usize, vec![0usize, 3, 6, 9]), (16, vec![0, 4, 8, 12])] {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        assert_eq!(
            init.symmetry_degree(),
            init.agent_count(),
            "n={n} homes={homes:?}: expected an equally-spaced (l = k) instance"
        );
        assert_eq!(
            oracle_moves(&init).total_moves,
            0,
            "n={n} homes={homes:?}: an already-uniform instance costs nothing"
        );
    }
    // l = 2 < k: periodic but clustered — targets {0, 2, 4, 6} on n = 8,
    // so agents at 1 and 5 each walk one hop.
    let periodic = InitialConfig::new(8, vec![0, 1, 4, 5]).expect("valid");
    assert_eq!(periodic.symmetry_degree(), 2);
    assert_eq!(oracle_moves(&periodic).total_moves, 2);
    // l = 1: aperiodic cluster — targets {0, 3, 6, 9} on n = 12, so the
    // agents at 1, 2, 3 walk 2 + 4 + 6 hops.
    let aperiodic = InitialConfig::new(12, vec![0, 1, 2, 3]).expect("valid");
    assert_eq!(aperiodic.symmetry_degree(), 1);
    assert_eq!(oracle_moves(&aperiodic).total_moves, 12);
}

/// The pre-existing exported brute force (`oracle_moves_brute_force`,
/// cyclic shifts only) must agree with the reduction-free one whenever
/// the order-preserving theorem applies — i.e. always. A disagreement
/// would mean the *old* test-support brute force was itself leaning on
/// an unverified reduction.
#[test]
fn exported_brute_force_agrees_with_full_assignments() {
    let cases = [
        (6usize, vec![0usize, 1]),
        (7, vec![0, 2, 3]),
        (8, vec![0, 1, 2]),
        (8, vec![1, 4, 6]),
        (5, vec![0, 1, 2]),
    ];
    for (n, homes) in cases {
        let init = InitialConfig::new(n, homes.clone()).expect("valid");
        assert_eq!(
            oracle_moves_brute_force(&init),
            unrestricted_brute(&init),
            "n={n} homes={homes:?}"
        );
    }
}
