//! **E-ABL-FIFO** — the FIFO link assumption is load-bearing.
//!
//! The paper's §2.1 model requires FIFO links: (1) each agent acts at its
//! home node before any other agent visits it (so tokens are in place),
//! and (2) travelling agents never overtake one another (Algorithm 2's
//! active-node detection and the relaxed algorithm's patrol-correction
//! window both rest on this). With overtaking links
//! ([`LinkDiscipline::Lifo`]) those guarantees evaporate; this test
//! documents the failure.

use ringdeploy::analysis::clustered_config;
use ringdeploy::sim::scheduler::OneAtATime;
use ringdeploy::sim::{satisfies_halting_deployment, LinkDiscipline, RunLimits};
use ringdeploy::{FullKnowledge, Ring};

/// Runs Algorithm 1 with the given link discipline under the
/// maximal-skew adversary; returns whether Definition 1 held.
fn run_algo1(discipline: LinkDiscipline) -> bool {
    // Clustered start: under LIFO + one-at-a-time, agent 0 can race through
    // other agents' homes before they ever act, seeing missing tokens and
    // mis-measuring the distance sequence.
    let init = clustered_config(24, 6, 0.5);
    let k = init.agent_count();
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(k));
    ring.set_link_discipline(discipline);
    let result = ring.run(
        &mut OneAtATime::new(),
        RunLimits::for_instance(init.ring_size(), k),
    );
    match result {
        Ok(out) => out.quiescent && satisfies_halting_deployment(&ring).is_satisfied(),
        // Livelock / limit blowups also count as failure.
        Err(_) => false,
    }
}

#[test]
fn fifo_links_succeed() {
    assert!(run_algo1(LinkDiscipline::Fifo));
}

#[test]
fn lifo_links_break_the_home_first_guarantee() {
    // With overtaking links, a fast agent can arrive at a home whose owner
    // has not released its token yet: the distance sequence it records is
    // wrong, and uniform deployment fails (or the run never settles).
    assert!(
        !run_algo1(LinkDiscipline::Lifo),
        "Algorithm 1 should not survive non-FIFO links on a clustered start"
    );
}

#[test]
fn discipline_must_be_set_before_running() {
    let init = clustered_config(8, 2, 0.5);
    let mut ring = Ring::new(&init, |_| FullKnowledge::new(2));
    let enabled = ring.enabled();
    ring.step(enabled[0]);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ring.set_link_discipline(LinkDiscipline::Lifo);
    }));
    assert!(result.is_err(), "late discipline change must panic");
}
